package world

import (
	"fmt"
	"math"

	"gamedb/internal/entity"
	"gamedb/internal/script"
	"gamedb/internal/spatial"
)

// builtins exposes the world to GSL scripts: state access (get/set),
// spatial queries (nearby/dist), movement, events and lifecycle. These
// are the host functions a game engine gives its designers.
func (w *World) builtins() []script.Builtin {
	asID := func(v script.Value) (entity.ID, error) {
		i, ok := v.AsInt()
		if !ok {
			return 0, fmt.Errorf("world: entity id must be int, got %s", v.Kind())
		}
		return entity.ID(i), nil
	}
	return []script.Builtin{
		{Name: "get", MinArgs: 2, MaxArgs: 2, Fn: func(args []script.Value) (script.Value, error) {
			id, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			col, ok := args[1].AsStr()
			if !ok {
				return script.Null(), fmt.Errorf("world: get column must be string")
			}
			v, err := w.Get(id, col)
			if err != nil {
				return script.Null(), err
			}
			return script.FromEntity(v), nil
		}},
		{Name: "set", MinArgs: 3, MaxArgs: 3, Fn: func(args []script.Value) (script.Value, error) {
			id, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			col, ok := args[1].AsStr()
			if !ok {
				return script.Null(), fmt.Errorf("world: set column must be string")
			}
			ev, err := args[2].ToEntity()
			if err != nil {
				return script.Null(), err
			}
			// Scripts write ints where columns want floats; coerce.
			if table, okT := w.tableOf[id]; okT {
				if ci, okC := w.tables[table].Schema().Col(col); okC {
					if w.tables[table].Schema().ColAt(ci).Kind == entity.KindFloat {
						if f, okF := ev.AsFloat(); okF {
							ev = entity.Float(f)
						}
					}
				}
			}
			return script.Null(), w.Set(id, col, ev)
		}},
		{Name: "nearby", MinArgs: 2, MaxArgs: 2, Fn: func(args []script.Value) (script.Value, error) {
			id, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			r, ok := args[1].AsFloat()
			if !ok {
				return script.Null(), fmt.Errorf("world: nearby radius must be numeric")
			}
			ids := w.Nearby(id, r)
			out := make([]script.Value, len(ids))
			for i, got := range ids {
				out[i] = script.Int(int64(got))
			}
			return script.List(out...), nil
		}},
		{Name: "dist", MinArgs: 2, MaxArgs: 2, Fn: func(args []script.Value) (script.Value, error) {
			a, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			b, err := asID(args[1])
			if err != nil {
				return script.Null(), err
			}
			pa, okA := w.Pos(a)
			pb, okB := w.Pos(b)
			if !okA || !okB {
				return script.Float(math.Inf(1)), nil
			}
			return script.Float(pa.Dist(pb)), nil
		}},
		{Name: "pos_x", MinArgs: 1, MaxArgs: 1, Fn: func(args []script.Value) (script.Value, error) {
			id, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			p, ok := w.Pos(id)
			if !ok {
				return script.Null(), fmt.Errorf("world: entity %d has no position", id)
			}
			return script.Float(p.X), nil
		}},
		{Name: "pos_y", MinArgs: 1, MaxArgs: 1, Fn: func(args []script.Value) (script.Value, error) {
			id, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			p, ok := w.Pos(id)
			if !ok {
				return script.Null(), fmt.Errorf("world: entity %d has no position", id)
			}
			return script.Float(p.Y), nil
		}},
		{Name: "move_toward", MinArgs: 4, MaxArgs: 4, Fn: func(args []script.Value) (script.Value, error) {
			id, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			tx, ok1 := args[1].AsFloat()
			ty, ok2 := args[2].AsFloat()
			step, ok3 := args[3].AsFloat()
			if !ok1 || !ok2 || !ok3 {
				return script.Null(), fmt.Errorf("world: move_toward wants numbers")
			}
			p, ok := w.Pos(id)
			if !ok {
				return script.Null(), fmt.Errorf("world: entity %d has no position", id)
			}
			to := spatial.Vec2{X: tx, Y: ty}.Sub(p)
			d := to.Len()
			var np spatial.Vec2
			if d <= step {
				np = spatial.Vec2{X: tx, Y: ty}
			} else {
				np = p.Add(to.Scale(step / d))
			}
			if err := w.Set(id, "x", entity.Float(np.X)); err != nil {
				return script.Null(), err
			}
			return script.Null(), w.Set(id, "y", entity.Float(np.Y))
		}},
		{Name: "emit", MinArgs: 2, MaxArgs: 3, Fn: func(args []script.Value) (script.Value, error) {
			name, ok := args[0].AsStr()
			if !ok {
				return script.Null(), fmt.Errorf("world: emit event name must be string")
			}
			id, err := asID(args[1])
			if err != nil {
				return script.Null(), err
			}
			amount := entity.Null()
			if len(args) == 3 {
				amount, err = args[2].ToEntity()
				if err != nil {
					return script.Null(), err
				}
			}
			w.Post(name, id, amount)
			return script.Null(), nil
		}},
		{Name: "despawn", MinArgs: 1, MaxArgs: 1, Fn: func(args []script.Value) (script.Value, error) {
			id, err := asID(args[0])
			if err != nil {
				return script.Null(), err
			}
			return script.Null(), w.Despawn(id)
		}},
		{Name: "spawn", MinArgs: 3, MaxArgs: 3, Fn: func(args []script.Value) (script.Value, error) {
			arch, ok := args[0].AsStr()
			if !ok {
				return script.Null(), fmt.Errorf("world: spawn archetype must be string")
			}
			x, ok1 := args[1].AsFloat()
			y, ok2 := args[2].AsFloat()
			if !ok1 || !ok2 {
				return script.Null(), fmt.Errorf("world: spawn position must be numeric")
			}
			id, err := w.Spawn(arch, spatial.Vec2{X: x, Y: y})
			if err != nil {
				return script.Null(), err
			}
			return script.Int(int64(id)), nil
		}},
		{Name: "rand_float", MinArgs: 0, MaxArgs: 0, Fn: func([]script.Value) (script.Value, error) {
			return script.Float(w.rng.Float64()), nil
		}},
		{Name: "tick", MinArgs: 0, MaxArgs: 0, Fn: func([]script.Value) (script.Value, error) {
			return script.Int(w.tick), nil
		}},
	}
}
