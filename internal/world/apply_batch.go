package world

// The columnar apply path: the set-oriented execution the declarative
// model promises (Sowell et al., "From Declarative Languages to
// Declarative Processing in Computer Games"). Where the legacy path
// walks the merged effect sequence row-at-a-time — each record paying a
// table lookup, a column lookup, a kind check and a change-notification
// sweep — the columnar path groups the merged records by (table,
// column) and writes each group through one batch call that resolves
// everything once. Position changes are not chased through per-row
// change notifications either: every entity whose x/y changed is
// accumulated during the group passes and the spatial grid is
// re-synced by a single MoveBatch flush.
//
// Determinism is inherited, not re-established: groups form in merged
// (source id, source order) order and preserve it per (entity, column),
// assignments still apply before deltas, and deltas still sum in merged
// order — so the columnar result is bit-identical to Config.RowApply
// for any Shards × Workers combination (the equivalence tests pin
// this). The one permitted divergence is spatial cell-bucket ordering,
// which no hashed state observes.

import (
	"gamedb/internal/entity"
	"gamedb/internal/spatial"
)

// colBatch accumulates one (table, column) group of the merged effect
// sequence. The ids/vals slices persist across ticks on the World's
// scratch lists, so steady-state apply allocates nothing.
type colBatch struct {
	tab *entity.Table
	col string
	// pos marks the x/y column of a spatially indexed table: applying
	// this group dirties the grid, so the flush pass must visit it.
	pos  bool
	ids  []entity.ID
	vals []entity.Value
}

// resetBatches empties the group list while keeping the per-group
// slice capacity. It runs at the END of each apply (not the start) so
// table pointers clear as soon as the groups are consumed — a table
// dropped by ResetState/Restore is never pinned between ticks.
func resetBatches(bs []colBatch) []colBatch {
	for i := range bs {
		bs[i].tab = nil
		bs[i].ids = bs[i].ids[:0]
		bs[i].vals = bs[i].vals[:0]
	}
	return bs[:0]
}

// batchFor returns the group for (tab, col), appending a new one in
// first-seen order. The live column set of one tick's writes is single
// digits, so a linear scan beats a map and allocates nothing.
func batchFor(bs *[]colBatch, tab *entity.Table, col string) *colBatch {
	b := *bs
	for i := range b {
		if b[i].tab == tab && b[i].col == col {
			return &b[i]
		}
	}
	if len(b) < cap(b) {
		b = b[:len(b)+1]
	} else {
		b = append(b, colBatch{})
	}
	g := &b[len(b)-1]
	g.tab, g.col = tab, col
	g.pos = (col == "x" || col == "y") && isSpatial(tab.Schema())
	g.ids, g.vals = g.ids[:0], g.vals[:0]
	*bs = b
	return g
}

// applyAssignColumnar is the batched replacement for the row-at-a-time
// assignment and delta passes: one grouping sweep over the merged
// sequence, one SetColumnBatch per written (table, column), one
// AddColumnBatch per delta'd (table, column), one MoveBatch flush.
// Conflict accounting matches the row path record-for-record: a record
// whose target cannot resolve, whose entity is unknown, or whose value
// is skipped inside the batch counts exactly one conflict.
func (w *World) applyAssignColumnar(merged []Effect, resolve func(entity.ID) (entity.ID, bool), conflicts *int) {
	posDirty := false

	// One-entry target → table memo: the merged sequence sorts by
	// source entity and behaviors overwhelmingly target self, so
	// consecutive records repeat the same tableOf/tables lookups.
	var memoID entity.ID
	var memoTab *entity.Table
	memoOK := false
	for i := range merged {
		e := &merged[i]
		if e.Kind != EffectSet && e.Kind != EffectAdd {
			continue
		}
		id, ok := resolve(e.Target)
		if !ok {
			*conflicts++
			w.noteConflict(e.Src)
			continue
		}
		if !memoOK || id != memoID {
			name, okT := w.tableOf[id]
			if !okT {
				*conflicts++
				w.noteConflict(e.Src)
				continue
			}
			memoID, memoTab, memoOK = id, w.tables[name], true
		}
		var g *colBatch
		if e.Kind == EffectSet {
			g = batchFor(&w.setBatches, memoTab, e.Col)
		} else {
			g = batchFor(&w.addBatches, memoTab, e.Col)
		}
		g.ids = append(g.ids, id)
		g.vals = append(g.vals, e.Val)
		if g.pos {
			posDirty = true
		}
	}

	// Batched writes skip change listeners, so the change feed takes
	// its marks here, one MarkCol per group. Marks are supersets (a
	// skipped or value-unchanged row still marks); consumers re-check
	// values, so supersets cost evaluation, not correctness.
	if w.feed != nil {
		for i := range w.setBatches {
			g := &w.setBatches[i]
			w.feed.MarkCol(g.tab.Name(), g.col, g.ids)
		}
		for i := range w.addBatches {
			g := &w.addBatches[i]
			w.feed.MarkCol(g.tab.Name(), g.col, g.ids)
		}
	}

	// Assignments first, then deltas over the post-assignment values —
	// the same phase order as the row path. Batch-level skips count in
	// the aggregate conflict tally only: the batch entry points report
	// how many records skipped, not which, so per-unit profiling
	// attribution covers the per-record sites above instead.
	for i := range w.setBatches {
		g := &w.setBatches[i]
		skipped, err := g.tab.SetColumnBatch(g.col, g.ids, g.vals)
		if err != nil {
			*conflicts += len(g.ids)
			continue
		}
		*conflicts += skipped
	}
	for i := range w.addBatches {
		g := &w.addBatches[i]
		skipped, err := g.tab.AddColumnBatch(g.col, g.ids, g.vals)
		if err != nil {
			*conflicts += len(g.ids)
			continue
		}
		*conflicts += skipped
	}

	if posDirty {
		w.flushMoves()
	}
	w.setBatches = resetBatches(w.setBatches)
	w.addBatches = resetBatches(w.addBatches)
}

// flushMoves re-syncs the spatial index after the columnar passes: one
// sweep over the position groups reading each touched entity's final
// (x, y), then one grid MoveBatch. An entity typically sits in several
// position groups (set-x and set-y from move_toward, add-x and add-y
// from physics), so a seen-set dedupes the flush to one entry per
// moved entity. Entities whose row vanished (a skipped write against a
// previously despawned id) never moved, so they are simply not
// flushed; moves to an unchanged position are no-ops inside the grid.
func (w *World) flushMoves() {
	if w.moveSeen == nil {
		w.moveSeen = make(map[entity.ID]struct{})
	}
	moves := w.moveBuf[:0]
	collect := func(bs []colBatch) {
		for i := range bs {
			g := &bs[i]
			if !g.pos || len(g.ids) == 0 {
				continue
			}
			s := g.tab.Schema()
			xci, _ := s.Col("x")
			yci, _ := s.Col("y")
			for _, id := range g.ids {
				if _, dup := w.moveSeen[id]; dup {
					continue
				}
				r, ok := g.tab.RowIndex(id)
				if !ok {
					continue
				}
				w.moveSeen[id] = struct{}{}
				moves = append(moves, spatial.Point{
					ID: spatial.ID(id),
					Pos: spatial.Vec2{
						X: g.tab.ValueAt(xci, r).Float(),
						Y: g.tab.ValueAt(yci, r).Float(),
					},
				})
			}
		}
	}
	collect(w.setBatches)
	collect(w.addBatches)
	clear(w.moveSeen)
	w.moveBuf = moves
	w.index.MoveBatch(moves)
}
