package world

// The effect-aware trigger drain: the state-effect pattern extended
// through the trigger phase. Each cascade round runs as its own mini
// tick —
//
//	match:  the engine pairs the round's queued events with registered
//	        rules in deterministic (event order, firing order) source
//	        order, executing nothing;
//	cond:   conditions evaluate in parallel as read-only queries over
//	        the round-start state (anything a condition emits is rolled
//	        back — conditions are queries);
//	resolve: one serial pass in source order consumes Once rules,
//	        counts activations, and runs host-registered Go rules
//	        directly (their actions cannot emit effects);
//	act:    the firing GSL actions fan across the Workers pool, each
//	        invocation atomic in its worker's EffectBuffer, keyed by a
//	        deterministic per-round source id;
//	apply:  one deterministic merge applies the round's effects and
//	        queues the events they posted, which form the next round.
//
// Because conditions read only frozen state and the apply order is
// keyed by (event seq, rule seq) — never by worker — the same seed
// yields an identical world for any Shards × Workers combination, and
// trigger-heavy cascades batch and parallelize exactly like behaviors.

import (
	"errors"
	"fmt"
	"time"

	"gamedb/internal/entity"
	"gamedb/internal/obs"
	"gamedb/internal/script"
	"gamedb/internal/trigger"
)

// boundTrigger is a content-pack rule's compiled programs plus its
// per-worker effect-mode interpreter clones. Clones grow lazily (on the
// coordinating goroutine) to the tick's worker count; each binds the
// matching worker's effect buffer, so clone wi may only ever run on
// worker slot wi.
type boundTrigger struct {
	name string
	cond *script.Program // nil = unconditional
	act  *script.Program

	condIns []*script.Interp
	actIns  []*script.Interp

	// prof is the rule's "trigger/<name>" profile entry, resolved once
	// when clones first grow (nil with profiling off — every use is
	// nil-safe). Caching it here keeps the act fan-out free of profiler
	// map lookups.
	prof *obs.ProfEntry
}

// triggerRoundStride separates the per-round source-id ranges of the
// trigger phase. A match's source id is (round+1)*stride + matchIndex:
// within a round the merge order reproduces (event seq, rule seq), and
// across rounds the per-invocation rand streams differ. maxSpawnsPerCall
// × the largest practical source id stays far below provBase.
const triggerRoundStride entity.ID = 1 << 20

// triggerSrc keys one trigger match's effect stream and rand stream.
func triggerSrc(round, mi int) entity.ID {
	return entity.ID(round+1)*triggerRoundStride + entity.ID(mi)
}

// ensureTriggerClones grows one bound rule's interpreter clones to n
// workers. Runs on the coordinating goroutine before any fan-out; the
// worker buffers must already exist (ensureWorkers). Creation is
// demand-driven — only rules actually matched in a round grow clones,
// so dead (Once-consumed, unregistered) rules never allocate.
func (w *World) ensureTriggerClones(bt *boundTrigger, n int) {
	if w.prof != nil && bt.prof == nil {
		bt.prof = w.prof.Entry("trigger/" + bt.name)
	}
	for len(bt.actIns) < n {
		wi := len(bt.actIns)
		bt.actIns = append(bt.actIns, script.NewInterp(bt.act, script.Options{
			Fuel:     w.cfg.ScriptFuel,
			Builtins: w.effectBuiltins(w.workerBufs[wi]),
		}))
	}
	if bt.cond == nil {
		return
	}
	for len(bt.condIns) < n {
		wi := len(bt.condIns)
		bt.condIns = append(bt.condIns, script.NewInterp(bt.cond, script.Options{
			Fuel:     w.cfg.ScriptFuel,
			Builtins: w.effectBuiltins(w.workerBufs[wi]),
		}))
	}
}

// drainTriggers runs the tick's trigger phase. In DirectTriggers mode
// it is the legacy serial drain; otherwise it loops effect-mode rounds
// until the queue is empty or the cascade limit trips (the remaining
// events are dropped and counted, and the engine stays usable).
func (w *World) drainTriggers(st *TickStats) error {
	if w.cfg.DirectTriggers {
		fired, err := w.trig.Drain()
		st.TriggerFired += fired
		return err
	}
	workers := w.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	w.ensureWorkers(workers)

	var errs []error
	for round := 0; ; round++ {
		// Round batch and match buffers are world scratch the engine
		// refills, so popping and matching a round allocates nothing in
		// steady state.
		batch := w.trig.TakeRound(w.trigEvBuf)
		w.trigEvBuf = batch
		if len(batch) == 0 {
			break
		}
		if round >= w.trig.MaxCascade() {
			w.trig.NoteDropped(len(batch))
			errs = append(errs, fmt.Errorf("%w: %d queued events dropped",
				trigger.ErrCascadeDepth, len(batch)))
			break
		}
		st.TriggerRounds++
		matches := w.trig.MatchRound(w.trigMatchBuf, batch)
		w.trigMatchBuf = matches
		if len(matches) == 0 {
			continue
		}
		if len(matches) >= int(triggerRoundStride) {
			errs = append(errs, fmt.Errorf(
				"world: trigger round %d has %d matches (max %d)",
				round, len(matches), triggerRoundStride-1))
			break
		}
		errs = append(errs, w.runTriggerRound(round, matches, workers, st)...)
	}
	return errors.Join(errs...)
}

// condResult is one match's condition outcome from the parallel pass.
type condResult struct {
	ok   bool
	skip bool // fuel exhaustion: a skipped query, not an error
	err  error
}

// runTriggerRound executes one cascade round's matches through the
// cond / resolve / act / apply pipeline, appending per-rule errors
// (the round always completes).
func (w *World) runTriggerRound(round int, matches []trigger.Match, workers int, st *TickStats) []error {
	roundStart := time.Now()
	// The round starts from applied state; whatever the buffers held
	// has already been merged.
	bufs := w.workerBufs[:workers]
	for _, buf := range bufs {
		buf.reset()
	}
	for _, m := range matches {
		if bt := w.trigBound[m.Rule]; bt != nil {
			w.ensureTriggerClones(bt, workers)
		}
	}

	// Cond: parallel read-only queries over the round-start state.
	// Each match index is written by exactly one worker. The result and
	// fuel buffers are World scratch reused across rounds.
	conds := w.condsBuf[:0]
	for range matches {
		conds = append(conds, condResult{})
	}
	w.condsBuf = conds
	fuels := w.fuelsBuf[:0]
	for i := 0; i < workers; i++ {
		fuels = append(fuels, 0)
	}
	w.fuelsBuf = fuels
	w.fanOut(workers, len(matches), func(wi, lo, hi int) {
		buf := w.workerBufs[wi]
		for mi := lo; mi < hi; mi++ {
			m := matches[mi]
			bt := w.trigBound[m.Rule]
			if bt == nil {
				continue // host Go rule: resolved serially below
			}
			if bt.cond == nil {
				conds[mi].ok = true
				continue
			}
			in := bt.condIns[wi]
			mark := buf.begin(triggerSrc(round, mi))
			// Conditions contribute sampled wall time to the rule's
			// profile (they are queries — effects roll back, so the
			// exact counters come from the act pass alone).
			tSample, sampling := bt.prof.BeginSample()
			v, err := in.Call("cond",
				script.Int(int64(m.Ev.Entity)), script.FromEntity(m.Ev.Field("amount")))
			bt.prof.EndSample(tSample, sampling)
			buf.rollback(mark) // conditions are queries: discard any emission
			fuels[wi] += in.FuelUsed()
			if err != nil {
				if isFuelErr(err) {
					conds[mi].skip = true
				} else {
					conds[mi].err = fmt.Errorf("trigger: rule %q condition: %w", bt.name, err)
				}
				continue
			}
			b, okB := v.AsBool()
			if !okB {
				conds[mi].err = fmt.Errorf("trigger %q condition returned %s", bt.name, v.Kind())
				continue
			}
			conds[mi].ok = b
		}
	})

	// Resolve: serial, in source order. Consumes Once rules (first
	// passing match in source order wins), counts activations, and runs
	// direct (host Go) rules immediately — their writes land before the
	// round's effect apply and are visible to later direct rules, the
	// serial-engine contract they were registered under.
	var errs []error
	fires := w.firesBuf[:0]
	for mi, m := range matches {
		bt := w.trigBound[m.Rule]
		if bt == nil {
			if !w.trig.Alive(m) {
				continue
			}
			if m.Rule.Cond != nil {
				ok, err := m.Rule.Cond(m.Ev)
				if err != nil {
					st.TriggerErrors++
					errs = append(errs, fmt.Errorf("trigger: rule %q condition: %w", m.Rule.Name, err))
					continue
				}
				if !ok {
					continue
				}
			}
			if !w.trig.Activate(m) {
				continue
			}
			st.TriggerFired++
			if err := m.Rule.Action(m.Ev); err != nil {
				st.TriggerErrors++
				errs = append(errs, fmt.Errorf("trigger: rule %q action: %w", m.Rule.Name, err))
			}
			continue
		}
		// A Once rule consumed earlier in this round (or a rule a direct
		// action just unregistered) is dead: serial execution would
		// never have evaluated its condition, so its speculative cond
		// outcome — including an error or fuel skip — is discarded, not
		// counted.
		if !w.trig.Alive(m) {
			continue
		}
		res := conds[mi]
		if res.skip {
			st.TriggerSkips++
			continue
		}
		if res.err != nil {
			st.TriggerErrors++
			errs = append(errs, res.err)
			continue
		}
		if !res.ok {
			continue
		}
		if !w.trig.Activate(m) {
			continue
		}
		st.TriggerFired++
		fires = append(fires, mi)
	}

	w.firesBuf = fires

	// Act: the firing GSL actions fan across the workers, each
	// invocation atomic in its worker's buffer, keyed by the match's
	// deterministic source id — the partitioning never shows.
	actErrs := w.actErrBuf[:0]
	actSkip := w.actSkipBuf[:0]
	for range fires {
		actErrs = append(actErrs, nil)
		actSkip = append(actSkip, false)
	}
	w.actErrBuf, w.actSkipBuf = actErrs, actSkip
	w.fanOut(workers, len(fires), func(wi, lo, hi int) {
		buf := w.workerBufs[wi]
		for fi := lo; fi < hi; fi++ {
			mi := fires[fi]
			m := matches[mi]
			bt := w.trigBound[m.Rule]
			in := bt.actIns[wi]
			reads0 := len(buf.reads)
			mark := buf.begin(triggerSrc(round, mi))
			tSample, sampling := bt.prof.BeginSample()
			_, err := in.Call("act",
				script.Int(int64(m.Ev.Entity)), script.FromEntity(m.Ev.Field("amount")))
			bt.prof.EndSample(tSample, sampling)
			fuels[wi] += in.FuelUsed()
			if err != nil {
				buf.rollback(mark)
				if isFuelErr(err) {
					actSkip[fi] = true
				} else {
					actErrs[fi] = fmt.Errorf("trigger: rule %q action: %w", bt.name, err)
				}
			}
			if bt.prof != nil {
				// Counted after rollback handling, like runWorker.
				bt.prof.AddCall(in.FuelUsed(), int64(len(buf.effects)-mark), int64(len(buf.reads)-reads0))
				if err != nil {
					if isFuelErr(err) {
						bt.prof.AddSkip()
					} else {
						bt.prof.AddError()
					}
				}
			}
		}
	})
	for fi := range fires {
		if actSkip[fi] {
			st.TriggerSkips++
		}
		if actErrs[fi] != nil {
			st.TriggerErrors++
			errs = append(errs, actErrs[fi])
		}
	}
	for _, f := range fuels {
		st.FuelUsed += f
	}

	// Apply: one deterministic merge ends the round; the events it
	// posts become the next round's batch. Under the OCC conflict
	// policy, losing trigger actions that read cells the winning set
	// wrote re-run on worker slot 0's clones, looked up by the match's
	// deterministic source id.
	if w.prof != nil {
		// Round sources map back to their rule for conflict / retry /
		// abort attribution, by the same arithmetic the OCC re-run uses.
		base := entity.ID(round+1) * triggerRoundStride
		w.profOf = func(src entity.ID) *obs.ProfEntry {
			mi := int(src - base)
			if mi >= 0 && mi < len(matches) {
				if bt := w.trigBound[matches[mi].Rule]; bt != nil {
					return bt.prof
				}
			}
			return w.otherProf
		}
	}
	if w.occEnabled() {
		rerun := func(src entity.ID) (int64, error) {
			mi := int(src - entity.ID(round+1)*triggerRoundStride)
			if mi < 0 || mi >= len(matches) {
				return 0, fmt.Errorf("world: re-run source %d outside trigger round %d", src, round)
			}
			m := matches[mi]
			bt := w.trigBound[m.Rule]
			if bt == nil {
				// Host Go rules run direct — their writes are never
				// effects, so they can never lose a merge; defensive.
				return 0, fmt.Errorf("world: host rule %q cannot re-run", m.Rule.Name)
			}
			in := bt.actIns[0]
			_, err := in.Call("act",
				script.Int(int64(m.Ev.Entity)), script.FromEntity(m.Ev.Field("amount")))
			return in.FuelUsed(), err
		}
		w.applyEffectsOCC(bufs, &st.TriggerEffects, &st.TriggerConflicts, st, rerun)
	} else {
		w.applyEffects(bufs, &st.TriggerEffects, &st.TriggerConflicts)
	}
	w.profOf = nil
	w.trace.Span(obs.SpanTrigRnd, w.tick, round, roundStart)
	return errs
}

// fanOut chunks n items contiguously across the shared worker pool and
// runs fn per worker slot, inline when workers is 1 (the same
// partitioning idiom as the query phase, so a match's worker-slot
// assignment is stable for a given worker count — though nothing
// downstream depends on it). Slot wi always owns chunk wi regardless of
// which pool goroutine executes it, so per-slot buffers stay exclusive.
func (w *World) fanOut(workers, n int, fn func(wi, lo, hi int)) {
	if n == 0 {
		return
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	w.pool.Par(workers, func(wi int) {
		lo, hi := chunkRange(n, workers, wi)
		if lo < hi {
			fn(wi, lo, hi)
		}
	})
}
