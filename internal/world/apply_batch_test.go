package world

import (
	"bytes"
	"fmt"
	"testing"

	"gamedb/internal/entity"
	"gamedb/internal/spatial"
)

// runChaosApply drives the chaos pack (every effect kind: sets, adds,
// spawns, despawns, posts, trigger writes, physics deltas) under the
// given apply mode and returns the final snapshot.
func runChaosApply(t *testing.T, workers int, rowApply bool) (*World, []byte) {
	t.Helper()
	w := loadPack(t, Config{Seed: 9, CellSize: 8, Workers: workers, RowApply: rowApply}, chaosPack)
	for i := 0; i < 30; i++ {
		st, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.ScriptErrors > 0 {
			t.Fatalf("workers=%d tick %d: script error %v", workers, st.Tick, w.LastScriptError)
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return w, snap
}

// TestBatchedApplyMatchesRowApply pins the columnar apply to the legacy
// row-at-a-time apply on the chaos workload: same snapshot bytes for
// every worker count, so grouping effects by (table, column) and
// flushing the spatial index in one MoveBatch is invisible in state.
func TestBatchedApplyMatchesRowApply(t *testing.T) {
	_, base := runChaosApply(t, 1, true)
	for _, workers := range []int{1, 2, 4, 8} {
		_, got := runChaosApply(t, workers, false)
		if !bytes.Equal(base, got) {
			t.Fatalf("batched apply (workers=%d) diverged from row apply", workers)
		}
	}
}

// TestSpatialIndexConsistencyAfterBatchedMoves checks the MoveBatch
// flush leaves the index exactly mirroring the tables: every live
// spatial row is queryable at its current (x, y), the indexed position
// matches the stored columns bit-for-bit, and no despawned entity
// lingers in the grid.
func TestSpatialIndexConsistencyAfterBatchedMoves(t *testing.T) {
	w, _ := runChaosApply(t, 4, false)
	live := 0
	for _, name := range w.TableNames() {
		tab, _ := w.Table(name)
		s := tab.Schema()
		if !isSpatial(s) {
			continue
		}
		xci, _ := s.Col("x")
		yci, _ := s.Col("y")
		tab.Scan(func(id entity.ID, row []entity.Value) bool {
			live++
			want := spatial.Vec2{X: row[xci].Float(), Y: row[yci].Float()}
			got, ok := w.Pos(id)
			if !ok {
				t.Fatalf("entity %d has a row but no indexed position", id)
			}
			if got != want {
				t.Fatalf("entity %d indexed at %v, table says %v", id, got, want)
			}
			found := false
			w.Index().QueryCircle(want, 0.001, func(qid spatial.ID, _ spatial.Vec2) bool {
				if entity.ID(qid) == id {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("entity %d not queryable at its position %v", id, want)
			}
			return true
		})
	}
	if live == 0 {
		t.Fatal("chaos scenario left no spatial rows to check")
	}
	if w.Index().Len() != live {
		t.Fatalf("index holds %d positions, tables hold %d spatial rows (stale entries?)",
			w.Index().Len(), live)
	}
}

// TestApplyStatsMatchAcrossModes asserts the two apply paths agree not
// just on state but on accounting: effects and conflicts per tick.
func TestApplyStatsMatchAcrossModes(t *testing.T) {
	run := func(rowApply bool) []TickStats {
		w := loadPack(t, Config{Seed: 9, CellSize: 8, Workers: 2, RowApply: rowApply}, chaosPack)
		var out []TickStats
		for i := 0; i < 20; i++ {
			st, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, st)
		}
		return out
	}
	row := run(true)
	batch := run(false)
	for i := range row {
		if row[i].Effects != batch[i].Effects || row[i].EffectConflicts != batch[i].EffectConflicts {
			t.Fatalf("tick %d: row apply %d effects/%d conflicts, batched %d/%d",
				i+1, row[i].Effects, row[i].EffectConflicts, batch[i].Effects, batch[i].EffectConflicts)
		}
		if row[i].TriggerEffects != batch[i].TriggerEffects || row[i].TriggerConflicts != batch[i].TriggerConflicts {
			t.Fatalf("tick %d: trigger accounting diverged between apply modes", i+1)
		}
	}
}

// TestEffectBufferResolutionCacheInvalidates pins the EffectBuffer's
// (table, schema, column) cache against schema migration: adding a
// column mid-run rebuilds the cached entry instead of writing through a
// stale column index.
func TestEffectBufferResolutionCacheInvalidates(t *testing.T) {
	const pack = `
<contentpack name="migr">
  <schema table="units">
    <column name="hp" kind="int" default="5"/>
  </schema>
  <archetype name="u" table="units" script="tickup"/>
  <script name="tickup">
fn on_tick(self) { add(self, "hp", 1); }
  </script>
  <spawn archetype="u" count="3" x="0" y="0"/>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, pack)
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	tab, _ := w.Table("units")
	// Migrate: prepend nothing but append a column, then drop hp, so
	// the old cached hp index would now be out of range or wrong.
	if err := tab.AddColumn(entity.Column{Name: "mana", Kind: entity.KindInt, Default: entity.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	var id entity.ID
	tab.Scan(func(i entity.ID, _ []entity.Value) bool { id = i; return false })
	hp, err := w.Get(id, "hp")
	if err != nil {
		t.Fatal(err)
	}
	if hp.Int() != 7 {
		t.Fatalf("hp = %d after two ticks, want 7 (stale column cache?)", hp.Int())
	}
	mana, err := w.Get(id, "mana")
	if err != nil {
		t.Fatal(err)
	}
	if mana.Int() != 2 {
		t.Fatalf("mana = %d, want default 2", mana.Int())
	}
}

// TestWorldsSharePoolDeterministically runs two worlds concurrently on
// the shared pool and checks both still produce the single-world
// result — pool scheduling must never leak into world state.
func TestWorldsSharePoolDeterministically(t *testing.T) {
	base, _ := runChaos(t, 4, 25)
	done := make(chan []byte, 2)
	for i := 0; i < 2; i++ {
		go func() {
			w := loadPack(t, Config{Seed: 9, CellSize: 8, Workers: 4}, chaosPack)
			for i := 0; i < 25; i++ {
				if _, err := w.Step(); err != nil {
					panic(fmt.Sprintf("step: %v", err))
				}
			}
			snap, err := w.Snapshot()
			if err != nil {
				panic(err)
			}
			done <- snap
		}()
	}
	for i := 0; i < 2; i++ {
		if got := <-done; !bytes.Equal(base, got) {
			t.Fatal("concurrent world on shared pool diverged from solo run")
		}
	}
}
