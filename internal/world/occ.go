package world

// The OCC conflict policy: serializable resolution of conflicting
// assignments, built on the generalized internal/txn validate/retry
// core. The state-effect pattern resolves write-write conflicts by fiat
// (deterministic last-write-wins), which silently drops the losers'
// writes — the classic lost update when the loser computed its value
// from a cell the winner rewrote. Under Config.ConflictPolicy ==
// ConflictOCC the apply phase instead behaves like a bounded optimistic
// scheduler:
//
//	detect:   the sorted merge yields, per (entity, column) cell, the
//	          surviving writer (txn.WriteSet records the owner; noting
//	          in merge order makes the last write the owner). Any
//	          invocation with a non-surviving EffectSet is a loser.
//	validate: a loser whose recorded read-set overlaps a cell some
//	          other invocation's surviving write owns (txn.Invalidated)
//	          computed against stale state — last-write-wins would not
//	          serialize, so it must re-run. A loser whose reads are
//	          untouched serializes fine *before* the winner and keeps
//	          its last-write-wins outcome.
//	withhold: invalidated invocations re-run whole, so every effect
//	          they emitted this round (sets, adds, spawns, posts) is
//	          withheld from the apply — re-running them later must not
//	          double their side effects.
//	re-run:   the invalidated invocations re-execute serially in
//	          ascending source order on worker slot 0's fuel-metered
//	          interpreter clones. Emissions buffer as effects, so every
//	          re-run in a round reads the same post-apply state; the
//	          round's buffer then feeds the same detect/validate/apply
//	          pipeline, and any invocations invalidated *again* (three
//	          writers racing one cell need two rounds) carry into the
//	          next round, up to Config.EffectRetryCap (txn.RetryLoop).
//	abort:    invocations still invalidated at the cap — or erroring
//	          during a re-run — abort: their effects are dropped and
//	          counted in TickStats.EffectAborts.
//
// Everything above is a pure function of the deterministic merge order
// and the per-invocation read logs, so world state stays hash-invariant
// across any Shards × Workers combination; on workloads with no
// conflicting assignments the policy is byte-identical to lastwrite.

import (
	"time"

	"gamedb/internal/entity"
	"gamedb/internal/obs"
	"gamedb/internal/txn"
)

// rerunFn re-executes one invocation (identified by its effect source
// id) against current world state. Implementations must execute on
// worker slot 0's interpreter clones — the OCC loop brackets each call
// with begin/rollback on workerBufs[0], which those clones emit into.
// It returns the fuel consumed and any execution error.
type rerunFn func(src entity.ID) (int64, error)

// applyEffectsOCC is the ConflictOCC counterpart of applyEffects: one
// deterministic merge, an OCC validate pass, and bounded serial re-run
// rounds. effects/conflicts receive the applied-record and dropped-
// record tallies exactly like applyEffects (withheld invocations'
// records are not counted as applied); retries, aborts and re-run fuel
// accumulate into st.
func (w *World) applyEffectsOCC(bufs []*EffectBuffer, effects, conflicts *int, st *TickStats, rerun rerunFn) {
	for _, b := range bufs {
		b.closeInvoc()
	}
	merged := w.collectMerge(bufs)
	if w.forwardingOn() {
		// Border invocations (any remote record) are withheld whole and
		// excluded from local validation: their remote half ships with
		// read-set metadata when the phase can re-run them cross-barrier
		// (the behavior phase), without it otherwise (trigger rounds).
		merged = w.partitionRemoteInvocs(merged, bufs, w.applyRemoteRerun,
			func(entity.ID) (int64, int) { return w.tick, 0 })
	}
	if len(merged) == 0 {
		return
	}
	invalid := w.occInvalidate(merged, bufs)
	if len(invalid) == 0 {
		// No conflicting assignment read stale state: identical to
		// lastwrite, on the identical code path.
		*effects += len(merged)
		w.applyMerged(merged, conflicts)
		return
	}
	applied := w.filterExcluding(merged, invalid)
	*effects += len(applied)
	w.applyMerged(applied, conflicts)

	buf := w.workerBufs[0]
	_, completed := txn.RetryLoop(w.effectRetryCap(), func(round int) bool {
		rt0 := time.Now()
		st.EffectRetries += len(invalid)
		w.noteRetries(invalid)
		buf.reset()
		for _, src := range invalid {
			mark := buf.begin(src)
			fuel, err := rerun(src)
			st.FuelUsed += fuel
			if err != nil {
				// The invocation cannot re-run (script error, fuel
				// exhaustion, its entity despawned mid-apply): abort it.
				buf.rollback(mark)
				st.EffectAborts++
				w.noteAbort(src)
			}
		}
		buf.closeInvoc()
		// Serial ascending-source re-runs emit an already-sorted
		// sequence; no second collectMerge (whose scratch still backs
		// the outer merged slice) is needed.
		roundMerged := buf.effects
		if w.forwardingOn() {
			roundMerged = w.partitionRemoteInvocs(roundMerged, w.workerBufs[:1], w.applyRemoteRerun,
				func(entity.ID) (int64, int) { return w.tick, 0 })
		}
		invalid = w.occInvalidate(roundMerged, w.workerBufs[:1])
		roundApplied := roundMerged
		if len(invalid) > 0 {
			roundApplied = w.filterExcluding(roundMerged, invalid)
		}
		*effects += len(roundApplied)
		w.applyMerged(roundApplied, conflicts)
		w.trace.Span(obs.SpanOCCRetry, w.tick, round, rt0)
		return len(invalid) == 0
	})
	if !completed {
		// Retry cap exhausted: the still-invalid invocations abort with
		// their final-round effects withheld (bounded-OCC rollback).
		st.EffectAborts += len(invalid)
		w.noteAborts(invalid)
	}
}

// occInvalidate computes the invocations that must re-run for one
// sorted merged sequence: losers of conflicting assignments whose
// recorded read-set overlaps a cell another invocation's surviving
// write owns. The returned slice (ascending source order, aliasing
// w.occInvalid) is valid until the next call.
//
// Detection runs on raw effect targets: provisional spawn ids are
// deterministic functions of their emitting source, so they can never
// carry a cross-invocation conflict, and nothing can have read them.
// Only EffectSet records conflict — adds commute, and despawn/post
// races keep their existing conflict accounting.
func (w *World) occInvalidate(merged []Effect, bufs []*EffectBuffer) []entity.ID {
	invalid := w.occInvalid[:0]
	w.occInvalid = invalid
	ws := &w.occWrites
	ws.Reset()
	for i := range merged {
		e := &merged[i]
		if e.Kind == EffectSet {
			ws.Note(readCell{id: e.Target, col: e.Col}, e.Src)
		}
	}
	if ws.Len() == 0 {
		return invalid
	}
	// Cheap pre-pass: most applies have no losing assignment at all, and
	// then the per-invocation read index never needs building.
	anyLoser := false
	for i := range merged {
		e := &merged[i]
		if e.Kind != EffectSet {
			continue
		}
		if owner, _ := ws.Owner(readCell{id: e.Target, col: e.Col}); owner != e.Src {
			anyLoser = true
			break
		}
	}
	if !anyLoser {
		return invalid
	}
	w.buildReadIndex(bufs)
	if w.occSeen == nil {
		w.occSeen = make(map[entity.ID]struct{})
	}
	clear(w.occSeen)
	for i := range merged {
		e := &merged[i]
		if e.Kind != EffectSet {
			continue
		}
		owner, _ := ws.Owner(readCell{id: e.Target, col: e.Col})
		if owner == e.Src {
			continue
		}
		if _, dup := w.occSeen[e.Src]; dup {
			continue
		}
		w.occSeen[e.Src] = struct{}{}
		if txn.Invalidated(e.Src, w.occReadIdx[e.Src], ws) {
			invalid = append(invalid, e.Src)
		}
	}
	w.occInvalid = invalid
	return invalid
}

// buildReadIndex rebuilds the source → read-set index from the buffers'
// sealed invocation records. Entries alias the buffers' read logs and
// stay valid until those buffers reset.
func (w *World) buildReadIndex(bufs []*EffectBuffer) {
	if w.occReadIdx == nil {
		w.occReadIdx = make(map[entity.ID][]readCell)
	}
	clear(w.occReadIdx)
	for _, b := range bufs {
		for i := range b.invocs {
			inv := &b.invocs[i]
			if inv.open || inv.readHi <= inv.readLo {
				continue
			}
			w.occReadIdx[inv.src] = b.reads[inv.readLo:inv.readHi]
		}
	}
}

// filterExcluding compacts merged into the world's filter scratch,
// dropping every *invocation* effect whose source is in exclude. An
// entity's physics deltas share its source id but are not part of the
// behavior invocation (Seq >= physicsSeq marks them): they commute, a
// re-run never re-emits them, and withholding them would silently lose
// the entity's velocity integration for the tick — so they always stay.
// For a re-run that rewrites x/y the order flips versus lastwrite
// (physics integrates in the main apply, the re-run's assignment lands
// after), which is exactly the serial story: physics first, then the
// re-run behavior computing from the integrated position. The result
// aliases w.occFilterBuf and is valid until the next call.
func (w *World) filterExcluding(merged []Effect, exclude []entity.ID) []Effect {
	if w.occExclude == nil {
		w.occExclude = make(map[entity.ID]struct{})
	}
	clear(w.occExclude)
	for _, src := range exclude {
		w.occExclude[src] = struct{}{}
	}
	out := w.occFilterBuf[:0]
	for i := range merged {
		e := &merged[i]
		if _, drop := w.occExclude[e.Src]; drop && e.Seq < physicsSeq {
			continue
		}
		out = append(out, *e)
	}
	w.occFilterBuf = out
	return out
}
