package world

import (
	"bytes"
	"strings"
	"testing"

	"gamedb/internal/content"
	"gamedb/internal/entity"
	"gamedb/internal/spatial"
)

func loadPack(t *testing.T, cfg Config, src string) *World {
	t.Helper()
	c, errs := content.LoadAndCompile(strings.NewReader(src))
	if len(errs) > 0 {
		t.Fatalf("pack: %v", errs)
	}
	w := New(cfg)
	if err := w.LoadPack(c); err != nil {
		t.Fatal(err)
	}
	return w
}

// chaosPack exercises every effect kind — assignments, additive deltas,
// spawns, despawns, event posts, per-entity deterministic randomness,
// trigger writes, and velocity physics — as the worker-count
// determinism workload.
const chaosPack = `
<contentpack name="chaos">
  <schema table="units">
    <column name="hp" kind="int" default="60"/>
    <column name="hits" kind="int"/>
    <column name="pings" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="vx" kind="float"/>
    <column name="vy" kind="float"/>
  </schema>
  <archetype name="walker" table="units" script="walk">
    <set column="hp" value="60"/>
  </archetype>
  <archetype name="drone" table="units" script="drift">
    <set column="hp" value="9"/>
  </archetype>
  <script name="walk">
fn on_tick(self) {
  let h = get(self, "hp");
  add(self, "hits", 1);
  if h &lt; 40 {
    set(self, "hp", 60);
    return;
  }
  set(self, "hp", h - 1);
  if h % 13 == 0 {
    let kid = spawn("drone", pos_x(self) + rand_float() * 4.0, pos_y(self) + rand_float() * 4.0);
    set(kid, "vx", rand_float() * 6.0 - 3.0);
    set(kid, "vy", rand_float() * 6.0 - 3.0);
  }
  let ns = nearby(self, 12.0);
  if len(ns) > 0 {
    emit("ping", self, len(ns));
    let first = 0;
    for id in ns { first = id; break; }
    move_toward(self, pos_x(first), pos_y(first), 0.5);
  }
}
  </script>
  <script name="drift">
fn on_tick(self) {
  let h = get(self, "hp");
  if h &lt; 1 {
    despawn(self);
    return;
  }
  set(self, "hp", h - 1);
}
  </script>
  <trigger name="count-pings" event="ping">
    <do>add(self, "pings", 1);</do>
  </trigger>
  <spawn archetype="walker" count="60" x="50" y="50" spread="40"/>
</contentpack>`

// runChaos builds the chaos world with the given worker count, runs it,
// and returns the snapshot (deterministic bytes: JSON with sorted keys).
func runChaos(t *testing.T, workers, ticks int) ([]byte, TickStats) {
	t.Helper()
	w := loadPack(t, Config{Seed: 9, CellSize: 8, Workers: workers}, chaosPack)
	var last TickStats
	for i := 0; i < ticks; i++ {
		st, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.ScriptErrors > 0 {
			t.Fatalf("workers=%d tick %d: script error %v", workers, st.Tick, w.LastScriptError)
		}
		last = st
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap, last
}

func TestStepDeterministicAcrossWorkers(t *testing.T) {
	const ticks = 30
	base, baseStats := runChaos(t, 1, ticks)
	if baseStats.Effects == 0 {
		t.Fatal("chaos scenario emitted no effects — workload not exercising the pipeline")
	}
	for _, workers := range []int{2, 4, 8} {
		snap, _ := runChaos(t, workers, ticks)
		if !bytes.Equal(base, snap) {
			t.Fatalf("world state diverged between 1 and %d workers", workers)
		}
	}
}

func TestBehaviorsReadFrozenTickStartState(t *testing.T) {
	// Both entities copy their neighbor's v plus one. Under the
	// state-effect pipeline each reads the frozen tick-start value, so
	// the outcome is order-free: a=21, b=11 — not the sequential
	// cascade a=21, b=22.
	src := `
<contentpack name="frozen">
  <schema table="u">
    <column name="v" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="copier" table="u" script="copy"/>
  <script name="copy">
fn on_tick(self) {
  let ns = nearby(self, 50.0);
  for id in ns { set(self, "v", get(id, "v") + 1); }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	a, _ := w.Spawn("copier", spatial.Vec2{X: 0, Y: 0})
	b, _ := w.Spawn("copier", spatial.Vec2{X: 1, Y: 0})
	w.Set(a, "v", entity.Int(10))
	w.Set(b, "v", entity.Int(20))
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Get(a, "v"); got != entity.Int(21) {
		t.Fatalf("a.v = %v, want 21", got)
	}
	if got, _ := w.Get(b, "v"); got != entity.Int(11) {
		t.Fatalf("b.v = %v, want 11 (frozen read), not the sequential 22", got)
	}
}

func TestAdditiveDeltasCombineAcrossSources(t *testing.T) {
	// Every entity adds 1 to its neighbor's counter: deltas from
	// different sources combine, not overwrite.
	src := `
<contentpack name="adders">
  <schema table="u">
    <column name="n" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="adder" table="u" script="bump"/>
  <script name="bump">
fn on_tick(self) {
  for id in nearby(self, 50.0) { add(id, "n", 1); }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 4}, src)
	ids := make([]entity.ID, 3)
	for i := range ids {
		ids[i], _ = w.Spawn("adder", spatial.Vec2{X: float64(i), Y: 0})
	}
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Effects != 6 {
		t.Fatalf("effects = %d, want 6 (3 entities × 2 neighbors)", st.Effects)
	}
	for _, id := range ids {
		if got, _ := w.Get(id, "n"); got != entity.Int(2) {
			t.Fatalf("entity %d n = %v, want 2", id, got)
		}
	}
}

func TestGhostsSkippedByBehaviorsAndPhysics(t *testing.T) {
	src := `
<contentpack name="g">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="vx" kind="float"/>
    <column name="vy" kind="float"/>
    <column name="n" kind="int"/>
  </schema>
  <archetype name="mover" table="u" script="count"/>
  <script name="count">
fn on_tick(self) { add(self, "n", 1); }
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, TickDT: 1}, src)
	id, _ := w.Spawn("mover", spatial.Vec2{X: 10, Y: 10})
	w.Set(id, "vx", entity.Float(5))
	w.SetGhost(id, true)
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptCalls != 0 {
		t.Fatalf("ghost ran a behavior: calls = %d", st.ScriptCalls)
	}
	if p, _ := w.Pos(id); p.X != 10 {
		t.Fatalf("ghost integrated by physics: x = %v", p.X)
	}
	// Unmarking restores both phases.
	w.SetGhost(id, false)
	st, err = w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptCalls != 1 {
		t.Fatalf("script calls = %d", st.ScriptCalls)
	}
	if p, _ := w.Pos(id); p.X != 15 {
		t.Fatalf("x = %v, want 15", p.X)
	}
}

func TestDespawnMidTickRosterSnapshot(t *testing.T) {
	// The killer despawns everyone nearby; the toucher marks everyone
	// nearby. The roster snapshot guarantees the toucher still runs this
	// tick even though the killer's effect removes it, and its own
	// effects still land (assignments apply before despawns).
	src := `
<contentpack name="roster">
  <schema table="u">
    <column name="mark" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="killer" table="u" script="kill"/>
  <archetype name="toucher" table="u" script="touch"/>
  <script name="kill">
fn on_tick(self) {
  for id in nearby(self, 50.0) { despawn(id); }
}
  </script>
  <script name="touch">
fn on_tick(self) {
  for id in nearby(self, 50.0) { set(id, "mark", 1) ; }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	killer, _ := w.Spawn("killer", spatial.Vec2{X: 0, Y: 0})
	if _, err := w.Spawn("toucher", spatial.Vec2{X: 1, Y: 0}); err != nil {
		t.Fatal(err)
	}
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptCalls != 2 {
		t.Fatalf("script calls = %d, want 2 (roster frozen at tick start)", st.ScriptCalls)
	}
	if w.Entities() != 1 {
		t.Fatalf("entities = %d, want 1 (toucher despawned)", w.Entities())
	}
	if got, _ := w.Get(killer, "mark"); got != entity.Int(1) {
		t.Fatalf("killer mark = %v — despawned toucher's effects were lost", got)
	}
}

func TestDoubleDespawnCountsConflict(t *testing.T) {
	src := `
<contentpack name="dd">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="killer" table="u" script="kill"/>
  <archetype name="victim" table="u"/>
  <script name="kill">
fn on_tick(self) {
  for id in nearby(self, 50.0) { despawn(id); }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 2}, src)
	w.Spawn("killer", spatial.Vec2{X: 0, Y: 0})
	w.Spawn("killer", spatial.Vec2{X: 2, Y: 0})
	w.Spawn("victim", spatial.Vec2{X: 1, Y: 0})
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Each killer despawns the other killer and the victim: 4 despawn
	// effects, of which the duplicate victim despawn resolves as the
	// one conflict.
	if w.Entities() != 0 {
		t.Fatalf("entities = %d, want 0", w.Entities())
	}
	if st.Effects != 4 {
		t.Fatalf("effects = %d, want 4", st.Effects)
	}
	if st.EffectConflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", st.EffectConflicts)
	}
}

func TestFuelExhaustionDiscardsInvocationEffects(t *testing.T) {
	// The runaway script writes a marker before spinning forever. The
	// invocation is atomic, so the marker must not survive, and the
	// exhaustion counts as a skip, never an error.
	src := `
<contentpack name="f">
  <schema table="u">
    <column name="mark" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="spinner" table="u" script="spin"/>
  <script name="spin">
fn on_tick(self) {
  set(self, "mark", 1);
  let i = 0;
  while i &lt; 1000000 { i = i + 1; }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, ScriptFuel: 5000, Workers: 2}, src)
	ids := make([]entity.ID, 4)
	for i := range ids {
		ids[i], _ = w.Spawn("spinner", spatial.Vec2{X: float64(10 * i), Y: 0})
	}
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptSkips != 4 {
		t.Fatalf("skips = %d, want 4 (every invocation exhausted)", st.ScriptSkips)
	}
	if st.ScriptErrors != 0 {
		t.Fatalf("fuel exhaustion counted as error: %d", st.ScriptErrors)
	}
	if st.Effects != 0 {
		t.Fatalf("effects = %d, want 0 (atomic discard)", st.Effects)
	}
	for _, id := range ids {
		if got, _ := w.Get(id, "mark"); got != entity.Int(0) {
			t.Fatalf("entity %d mark = %v — exhausted invocation leaked a write", id, got)
		}
	}
}

func TestTriggerDrainErrorPropagates(t *testing.T) {
	src := `
<contentpack name="t">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="poker" table="u" script="poke"/>
  <script name="poke">
fn on_tick(self) { emit("boom", self, 1); }
  </script>
  <trigger name="bad" event="boom">
    <do>get(self, "no_such_column");</do>
  </trigger>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	w.Spawn("poker", spatial.Vec2{})
	st, err := w.Step()
	if err == nil {
		t.Fatal("trigger drain error must propagate out of Step")
	}
	if st.Tick != 1 || st.ScriptCalls != 1 {
		t.Fatalf("stats lost on trigger error: %+v", st)
	}
}

func TestSpawnedEntitiesMaterializeAtApply(t *testing.T) {
	src := `
<contentpack name="s">
  <schema table="u">
    <column name="hp" kind="int" default="5"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="mother" table="u" script="bud"/>
  <archetype name="child" table="u"/>
  <script name="bud">
fn on_tick(self) {
  let kid = spawn("child", pos_x(self) + 1.0, pos_y(self));
  set(kid, "hp", 77);
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 2}, src)
	w.Spawn("mother", spatial.Vec2{X: 10, Y: 10})
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptErrors > 0 {
		t.Fatal(w.LastScriptError)
	}
	if w.Entities() != 2 {
		t.Fatalf("entities = %d, want 2", w.Entities())
	}
	// The set against the provisional id remapped onto the real row.
	tab, _ := w.Table("u")
	found := false
	tab.Scan(func(id entity.ID, row []entity.Value) bool {
		if row[tab.Schema().MustCol("hp")] == entity.Int(77) {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("set on provisional spawn id did not reach the materialized row")
	}
	// Only the mother ran a behavior this tick (roster snapshot).
	if st.ScriptCalls != 1 {
		t.Fatalf("script calls = %d, want 1", st.ScriptCalls)
	}
}

func TestTableNamesCacheInvalidation(t *testing.T) {
	w := New(Config{Seed: 1})
	if names := w.TableNames(); len(names) != 0 {
		t.Fatalf("names = %v", names)
	}
	s := entity.MustSchema(entity.Column{Name: "a", Kind: entity.KindInt})
	if _, err := w.CreateTable("zeta", s); err != nil {
		t.Fatal(err)
	}
	if names := w.TableNames(); len(names) != 1 || names[0] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	if _, err := w.CreateTable("alpha", s); err != nil {
		t.Fatal(err)
	}
	names := w.TableNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("cache not invalidated by CreateTable: %v", names)
	}
	// The public accessor hands out copies: mutating one must not
	// corrupt the cache.
	names[0] = "corrupted"
	if again := w.TableNames(); again[0] != "alpha" {
		t.Fatalf("TableNames cache aliased caller slice: %v", again)
	}
}
