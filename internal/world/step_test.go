package world

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gamedb/internal/content"
	"gamedb/internal/entity"
	"gamedb/internal/script"
	"gamedb/internal/spatial"
	"gamedb/internal/trigger"
)

func loadPack(t *testing.T, cfg Config, src string) *World {
	t.Helper()
	c, errs := content.LoadAndCompile(strings.NewReader(src))
	if len(errs) > 0 {
		t.Fatalf("pack: %v", errs)
	}
	w := New(cfg)
	if err := w.LoadPack(c); err != nil {
		t.Fatal(err)
	}
	return w
}

// chaosPack exercises every effect kind — assignments, additive deltas,
// spawns, despawns, event posts, per-entity deterministic randomness,
// trigger writes, and velocity physics — as the worker-count
// determinism workload.
const chaosPack = `
<contentpack name="chaos">
  <schema table="units">
    <column name="hp" kind="int" default="60"/>
    <column name="hits" kind="int"/>
    <column name="pings" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="vx" kind="float"/>
    <column name="vy" kind="float"/>
  </schema>
  <archetype name="walker" table="units" script="walk">
    <set column="hp" value="60"/>
  </archetype>
  <archetype name="drone" table="units" script="drift">
    <set column="hp" value="9"/>
  </archetype>
  <script name="walk">
fn on_tick(self) {
  let h = get(self, "hp");
  add(self, "hits", 1);
  if h &lt; 40 {
    set(self, "hp", 60);
    return;
  }
  set(self, "hp", h - 1);
  if h % 13 == 0 {
    let kid = spawn("drone", pos_x(self) + rand_float() * 4.0, pos_y(self) + rand_float() * 4.0);
    set(kid, "vx", rand_float() * 6.0 - 3.0);
    set(kid, "vy", rand_float() * 6.0 - 3.0);
  }
  let ns = nearby(self, 12.0);
  if len(ns) > 0 {
    emit("ping", self, len(ns));
    let first = 0;
    for id in ns { first = id; break; }
    move_toward(self, pos_x(first), pos_y(first), 0.5);
  }
}
  </script>
  <script name="drift">
fn on_tick(self) {
  let h = get(self, "hp");
  if h &lt; 1 {
    despawn(self);
    return;
  }
  set(self, "hp", h - 1);
}
  </script>
  <trigger name="count-pings" event="ping">
    <do>add(self, "pings", 1);</do>
  </trigger>
  <spawn archetype="walker" count="60" x="50" y="50" spread="40"/>
</contentpack>`

// runChaos builds the chaos world with the given worker count, runs it,
// and returns the snapshot (deterministic bytes: JSON with sorted keys).
func runChaos(t *testing.T, workers, ticks int) ([]byte, TickStats) {
	t.Helper()
	w := loadPack(t, Config{Seed: 9, CellSize: 8, Workers: workers}, chaosPack)
	var last TickStats
	for i := 0; i < ticks; i++ {
		st, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.ScriptErrors > 0 {
			t.Fatalf("workers=%d tick %d: script error %v", workers, st.Tick, w.LastScriptError)
		}
		last = st
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap, last
}

func TestStepDeterministicAcrossWorkers(t *testing.T) {
	const ticks = 30
	base, baseStats := runChaos(t, 1, ticks)
	if baseStats.Effects == 0 {
		t.Fatal("chaos scenario emitted no effects — workload not exercising the pipeline")
	}
	for _, workers := range []int{2, 4, 8} {
		snap, _ := runChaos(t, workers, ticks)
		if !bytes.Equal(base, snap) {
			t.Fatalf("world state diverged between 1 and %d workers", workers)
		}
	}
}

func TestBehaviorsReadFrozenTickStartState(t *testing.T) {
	// Both entities copy their neighbor's v plus one. Under the
	// state-effect pipeline each reads the frozen tick-start value, so
	// the outcome is order-free: a=21, b=11 — not the sequential
	// cascade a=21, b=22.
	src := `
<contentpack name="frozen">
  <schema table="u">
    <column name="v" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="copier" table="u" script="copy"/>
  <script name="copy">
fn on_tick(self) {
  let ns = nearby(self, 50.0);
  for id in ns { set(self, "v", get(id, "v") + 1); }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	a, _ := w.Spawn("copier", spatial.Vec2{X: 0, Y: 0})
	b, _ := w.Spawn("copier", spatial.Vec2{X: 1, Y: 0})
	w.Set(a, "v", entity.Int(10))
	w.Set(b, "v", entity.Int(20))
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Get(a, "v"); got != entity.Int(21) {
		t.Fatalf("a.v = %v, want 21", got)
	}
	if got, _ := w.Get(b, "v"); got != entity.Int(11) {
		t.Fatalf("b.v = %v, want 11 (frozen read), not the sequential 22", got)
	}
}

func TestAdditiveDeltasCombineAcrossSources(t *testing.T) {
	// Every entity adds 1 to its neighbor's counter: deltas from
	// different sources combine, not overwrite.
	src := `
<contentpack name="adders">
  <schema table="u">
    <column name="n" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="adder" table="u" script="bump"/>
  <script name="bump">
fn on_tick(self) {
  for id in nearby(self, 50.0) { add(id, "n", 1); }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 4}, src)
	ids := make([]entity.ID, 3)
	for i := range ids {
		ids[i], _ = w.Spawn("adder", spatial.Vec2{X: float64(i), Y: 0})
	}
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Effects != 6 {
		t.Fatalf("effects = %d, want 6 (3 entities × 2 neighbors)", st.Effects)
	}
	for _, id := range ids {
		if got, _ := w.Get(id, "n"); got != entity.Int(2) {
			t.Fatalf("entity %d n = %v, want 2", id, got)
		}
	}
}

func TestGhostsSkippedByBehaviorsAndPhysics(t *testing.T) {
	src := `
<contentpack name="g">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="vx" kind="float"/>
    <column name="vy" kind="float"/>
    <column name="n" kind="int"/>
  </schema>
  <archetype name="mover" table="u" script="count"/>
  <script name="count">
fn on_tick(self) { add(self, "n", 1); }
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, TickDT: 1}, src)
	id, _ := w.Spawn("mover", spatial.Vec2{X: 10, Y: 10})
	w.Set(id, "vx", entity.Float(5))
	w.SetGhost(id, true)
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptCalls != 0 {
		t.Fatalf("ghost ran a behavior: calls = %d", st.ScriptCalls)
	}
	if p, _ := w.Pos(id); p.X != 10 {
		t.Fatalf("ghost integrated by physics: x = %v", p.X)
	}
	// Unmarking restores both phases.
	w.SetGhost(id, false)
	st, err = w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptCalls != 1 {
		t.Fatalf("script calls = %d", st.ScriptCalls)
	}
	if p, _ := w.Pos(id); p.X != 15 {
		t.Fatalf("x = %v, want 15", p.X)
	}
}

func TestDespawnMidTickRosterSnapshot(t *testing.T) {
	// The killer despawns everyone nearby; the toucher marks everyone
	// nearby. The roster snapshot guarantees the toucher still runs this
	// tick even though the killer's effect removes it, and its own
	// effects still land (assignments apply before despawns).
	src := `
<contentpack name="roster">
  <schema table="u">
    <column name="mark" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="killer" table="u" script="kill"/>
  <archetype name="toucher" table="u" script="touch"/>
  <script name="kill">
fn on_tick(self) {
  for id in nearby(self, 50.0) { despawn(id); }
}
  </script>
  <script name="touch">
fn on_tick(self) {
  for id in nearby(self, 50.0) { set(id, "mark", 1) ; }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	killer, _ := w.Spawn("killer", spatial.Vec2{X: 0, Y: 0})
	if _, err := w.Spawn("toucher", spatial.Vec2{X: 1, Y: 0}); err != nil {
		t.Fatal(err)
	}
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptCalls != 2 {
		t.Fatalf("script calls = %d, want 2 (roster frozen at tick start)", st.ScriptCalls)
	}
	if w.Entities() != 1 {
		t.Fatalf("entities = %d, want 1 (toucher despawned)", w.Entities())
	}
	if got, _ := w.Get(killer, "mark"); got != entity.Int(1) {
		t.Fatalf("killer mark = %v — despawned toucher's effects were lost", got)
	}
}

func TestDoubleDespawnCountsConflict(t *testing.T) {
	src := `
<contentpack name="dd">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="killer" table="u" script="kill"/>
  <archetype name="victim" table="u"/>
  <script name="kill">
fn on_tick(self) {
  for id in nearby(self, 50.0) { despawn(id); }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 2}, src)
	w.Spawn("killer", spatial.Vec2{X: 0, Y: 0})
	w.Spawn("killer", spatial.Vec2{X: 2, Y: 0})
	w.Spawn("victim", spatial.Vec2{X: 1, Y: 0})
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Each killer despawns the other killer and the victim: 4 despawn
	// effects, of which the duplicate victim despawn resolves as the
	// one conflict.
	if w.Entities() != 0 {
		t.Fatalf("entities = %d, want 0", w.Entities())
	}
	if st.Effects != 4 {
		t.Fatalf("effects = %d, want 4", st.Effects)
	}
	if st.EffectConflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", st.EffectConflicts)
	}
}

func TestFuelExhaustionDiscardsInvocationEffects(t *testing.T) {
	// The runaway script writes a marker before spinning forever. The
	// invocation is atomic, so the marker must not survive, and the
	// exhaustion counts as a skip, never an error.
	src := `
<contentpack name="f">
  <schema table="u">
    <column name="mark" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="spinner" table="u" script="spin"/>
  <script name="spin">
fn on_tick(self) {
  set(self, "mark", 1);
  let i = 0;
  while i &lt; 1000000 { i = i + 1; }
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, ScriptFuel: 5000, Workers: 2}, src)
	ids := make([]entity.ID, 4)
	for i := range ids {
		ids[i], _ = w.Spawn("spinner", spatial.Vec2{X: float64(10 * i), Y: 0})
	}
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptSkips != 4 {
		t.Fatalf("skips = %d, want 4 (every invocation exhausted)", st.ScriptSkips)
	}
	if st.ScriptErrors != 0 {
		t.Fatalf("fuel exhaustion counted as error: %d", st.ScriptErrors)
	}
	if st.Effects != 0 {
		t.Fatalf("effects = %d, want 0 (atomic discard)", st.Effects)
	}
	for _, id := range ids {
		if got, _ := w.Get(id, "mark"); got != entity.Int(0) {
			t.Fatalf("entity %d mark = %v — exhausted invocation leaked a write", id, got)
		}
	}
}

func TestTriggerDrainErrorPropagates(t *testing.T) {
	src := `
<contentpack name="t">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="poker" table="u" script="poke"/>
  <script name="poke">
fn on_tick(self) { emit("boom", self, 1); }
  </script>
  <trigger name="bad" event="boom">
    <do>get(self, "no_such_column");</do>
  </trigger>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	w.Spawn("poker", spatial.Vec2{})
	st, err := w.Step()
	if err == nil {
		t.Fatal("trigger drain error must propagate out of Step")
	}
	if st.Tick != 1 || st.ScriptCalls != 1 {
		t.Fatalf("stats lost on trigger error: %+v", st)
	}
}

func TestSpawnedEntitiesMaterializeAtApply(t *testing.T) {
	src := `
<contentpack name="s">
  <schema table="u">
    <column name="hp" kind="int" default="5"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="mother" table="u" script="bud"/>
  <archetype name="child" table="u"/>
  <script name="bud">
fn on_tick(self) {
  let kid = spawn("child", pos_x(self) + 1.0, pos_y(self));
  set(kid, "hp", 77);
}
  </script>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 2}, src)
	w.Spawn("mother", spatial.Vec2{X: 10, Y: 10})
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.ScriptErrors > 0 {
		t.Fatal(w.LastScriptError)
	}
	if w.Entities() != 2 {
		t.Fatalf("entities = %d, want 2", w.Entities())
	}
	// The set against the provisional id remapped onto the real row.
	tab, _ := w.Table("u")
	found := false
	tab.Scan(func(id entity.ID, row []entity.Value) bool {
		if row[tab.Schema().MustCol("hp")] == entity.Int(77) {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("set on provisional spawn id did not reach the materialized row")
	}
	// Only the mother ran a behavior this tick (roster snapshot).
	if st.ScriptCalls != 1 {
		t.Fatalf("script calls = %d, want 1", st.ScriptCalls)
	}
}

// triggerChaosPack is the trigger-cascade determinism workload: every
// caster's behavior emits a self-targeted surge that a chained trigger
// re-emits across rounds while adding, conditionally spawning sparks
// (with per-match deterministic rand), and a final-round trigger burns
// hp and eventually despawns the caster — so the trigger phase itself
// exercises set, add, spawn, despawn, emit and rand_float.
const triggerChaosPack = `
<contentpack name="trigchaos">
  <schema table="units">
    <column name="hp" kind="int" default="40"/>
    <column name="boom" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="caster" table="units" script="cast"/>
  <archetype name="spark" table="units">
    <set column="hp" value="1"/>
  </archetype>
  <script name="cast">
fn on_tick(self) { emit("surge", self, 2); }
  </script>
  <trigger name="surge-chain" event="surge" priority="5">
    <when>amount &gt; 0</when>
    <do>
      add(self, "boom", 1);
      if get(self, "hp") % 2 == 0 {
        spawn("spark", pos_x(self) + rand_float() * 3.0, pos_y(self) + rand_float() * 3.0);
      }
      emit("surge", self, amount - 1);
    </do>
  </trigger>
  <trigger name="surge-burn" event="surge">
    <when>amount == 0</when>
    <do>
      add(self, "hp", 0 - 1);
      if get(self, "hp") &lt;= 36 { despawn(self); }
    </do>
  </trigger>
  <spawn archetype="caster" count="40" x="50" y="50" spread="35"/>
</contentpack>`

// runTriggerChaos runs the trigger-chaos world and returns its snapshot
// plus the run's aggregated trigger accounting (summed across ticks —
// the casters die partway through, so any single tick is unreliable).
func runTriggerChaos(t *testing.T, workers, ticks int) ([]byte, TickStats) {
	t.Helper()
	w := loadPack(t, Config{Seed: 5, CellSize: 8, Workers: workers}, triggerChaosPack)
	var agg TickStats
	for i := 0; i < ticks; i++ {
		st, err := w.Step()
		if err != nil {
			t.Fatalf("workers=%d tick %d: %v", workers, st.Tick, err)
		}
		agg.TriggerFired += st.TriggerFired
		agg.TriggerRounds += st.TriggerRounds
		agg.TriggerEffects += st.TriggerEffects
		agg.TriggerConflicts += st.TriggerConflicts
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap, agg
}

func TestTriggerCascadeDeterministicAcrossWorkers(t *testing.T) {
	const ticks = 8
	base, baseStats := runTriggerChaos(t, 1, ticks)
	if baseStats.TriggerRounds < 3 {
		t.Fatalf("rounds = %d — scenario not cascading", baseStats.TriggerRounds)
	}
	if baseStats.TriggerEffects == 0 {
		t.Fatal("trigger rounds emitted no effects — workload not exercising the effect drain")
	}
	for _, workers := range []int{2, 4, 8} {
		snap, st := runTriggerChaos(t, workers, ticks)
		if !bytes.Equal(base, snap) {
			t.Fatalf("world state diverged between 1 and %d workers under trigger cascades", workers)
		}
		if st.TriggerFired != baseStats.TriggerFired || st.TriggerRounds != baseStats.TriggerRounds {
			t.Fatalf("trigger accounting diverged: w%d fired=%d rounds=%d, base fired=%d rounds=%d",
				workers, st.TriggerFired, st.TriggerRounds, baseStats.TriggerFired, baseStats.TriggerRounds)
		}
	}
}

func TestOnceTriggerFiresOnceAcrossWorkers(t *testing.T) {
	// Many entities emit the once rule's event in the same tick: the
	// effect drain matches it against every event, but it must fire for
	// exactly the first match in source order, at every worker count.
	src := `
<contentpack name="once">
  <schema table="u">
    <column name="marks" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="hitter" table="u" script="hit"/>
  <script name="hit">
fn on_tick(self) { emit("hit", self, 1); }
  </script>
  <trigger name="first-blood" event="hit" once="true">
    <do>add(self, "marks", 1);</do>
  </trigger>
</contentpack>`
	run := func(workers int) ([]byte, *World) {
		w := loadPack(t, Config{Seed: 3, Workers: workers}, src)
		for i := 0; i < 6; i++ {
			if _, err := w.Spawn("hitter", spatial.Vec2{X: float64(i), Y: 0}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := w.Step(); err != nil {
			t.Fatal(err)
		}
		snap, err := w.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap, w
	}
	base, bw := run(1)
	if got := bw.Triggers().FiredCount("first-blood"); got != 1 {
		t.Fatalf("once trigger fired %d times", got)
	}
	if bw.Triggers().Rules() != 0 {
		t.Fatalf("once trigger should unregister; Rules = %d", bw.Triggers().Rules())
	}
	for _, workers := range []int{2, 4, 8} {
		snap, w := run(workers)
		if got := w.Triggers().FiredCount("first-blood"); got != 1 {
			t.Fatalf("workers=%d: once trigger fired %d times", workers, got)
		}
		if !bytes.Equal(base, snap) {
			t.Fatalf("workers=%d: once rule marked a different entity", workers)
		}
	}
}

func TestTriggerCascadeDepthRecovers(t *testing.T) {
	src := `
<contentpack name="loop">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="p" table="u" script="poke"/>
  <script name="poke">
fn on_tick(self) { emit("ping", self, 1); }
  </script>
  <trigger name="loop" event="ping">
    <do>emit("ping", self, 1);</do>
  </trigger>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 2}, src)
	id, _ := w.Spawn("p", spatial.Vec2{})
	st, err := w.Step()
	if !errors.Is(err, trigger.ErrCascadeDepth) {
		t.Fatalf("err = %v, want ErrCascadeDepth", err)
	}
	if st.TriggerRounds != w.Triggers().MaxCascade() {
		t.Fatalf("rounds = %d, want the cascade limit %d", st.TriggerRounds, w.Triggers().MaxCascade())
	}
	if w.Triggers().Dropped() == 0 {
		t.Fatal("overflow did not count dropped events")
	}
	// The queue cleared, so the engine recovers once the emitter is gone.
	if err := w.Despawn(id); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(); err != nil {
		t.Fatalf("post-overflow tick: %v", err)
	}
}

func TestTriggerActionErrorContinuesBatch(t *testing.T) {
	// One bad trigger must not swallow the other events of the tick:
	// the good trigger still fires and the error surfaces from Step.
	src := `
<contentpack name="t">
  <schema table="u">
    <column name="n" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="poker" table="u" script="poke"/>
  <script name="poke">
fn on_tick(self) { emit("boom", self, 1); emit("count", self, 1); }
  </script>
  <trigger name="bad" event="boom">
    <do>get(self, "no_such_column");</do>
  </trigger>
  <trigger name="good" event="count">
    <do>add(self, "n", 1);</do>
  </trigger>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, Workers: 2}, src)
	id, _ := w.Spawn("poker", spatial.Vec2{})
	st, err := w.Step()
	if err == nil {
		t.Fatal("trigger action error must surface from Step")
	}
	if st.TriggerErrors != 1 {
		t.Fatalf("TriggerErrors = %d, want 1", st.TriggerErrors)
	}
	if got, _ := w.Get(id, "n"); got != entity.Int(1) {
		t.Fatalf("n = %v — the erroring trigger swallowed the rest of the batch", got)
	}
}

func TestTriggerFuelExhaustionSkips(t *testing.T) {
	// A trigger action that runs out of fuel is a skipped query: its
	// effects roll back, it is not an error, and the tick continues.
	src := `
<contentpack name="tf">
  <schema table="u">
    <column name="mark" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="poker" table="u" script="poke"/>
  <script name="poke">
fn on_tick(self) { emit("spin", self, 1); }
  </script>
  <trigger name="spinner" event="spin">
    <do>
      set(self, "mark", 1);
      let i = 0;
      while i &lt; 1000000 { i = i + 1; }
    </do>
  </trigger>
</contentpack>`
	w := loadPack(t, Config{Seed: 1, ScriptFuel: 5000, Workers: 2}, src)
	id, _ := w.Spawn("poker", spatial.Vec2{})
	st, err := w.Step()
	if err != nil {
		t.Fatalf("fuel exhaustion must not error the tick: %v", err)
	}
	if st.TriggerSkips != 1 {
		t.Fatalf("TriggerSkips = %d, want 1", st.TriggerSkips)
	}
	if st.TriggerErrors != 0 {
		t.Fatalf("TriggerErrors = %d, want 0", st.TriggerErrors)
	}
	if got, _ := w.Get(id, "mark"); got != entity.Int(0) {
		t.Fatalf("mark = %v — exhausted trigger invocation leaked a write", got)
	}
}

func TestRestoreClearsPendingTriggerEvents(t *testing.T) {
	// Events posted before a crash must not drain into the freshly
	// restored state, and fired counts restart with the state.
	src := `
<contentpack name="r">
  <schema table="u">
    <column name="n" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="thing" table="u"/>
  <trigger name="count" event="evt">
    <do>add(self, "n", 1);</do>
  </trigger>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	id, _ := w.Spawn("thing", spatial.Vec2{})
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w.Post("evt", id, entity.Int(1))
	w.Post("evt", id, entity.Int(1))
	if err := w.Restore(snap); err != nil {
		t.Fatal(err)
	}
	st, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.TriggerFired != 0 {
		t.Fatalf("TriggerFired = %d — pre-crash events drained into restored state", st.TriggerFired)
	}
	if got, _ := w.Get(id, "n"); got != entity.Int(0) {
		t.Fatalf("n = %v, want 0", got)
	}
	if w.Triggers().FiredCount("count") != 0 {
		t.Fatal("fired counts survived the restore")
	}
	// The trigger itself survives (it is content): a post-restore event
	// still fires it.
	w.Post("evt", id, entity.Int(1))
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Get(id, "n"); got != entity.Int(1) {
		t.Fatalf("post-restore trigger did not fire: n = %v", got)
	}
}

func TestRestoreResurrectsOnceTrigger(t *testing.T) {
	// A once trigger consumed after the snapshot must be fireable again
	// in the restored state — otherwise the restored run diverges from
	// a fresh run of the same snapshot.
	src := `
<contentpack name="ro">
  <schema table="u">
    <column name="n" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="thing" table="u"/>
  <trigger name="first" event="evt" once="true">
    <do>add(self, "n", 1);</do>
  </trigger>
</contentpack>`
	w := loadPack(t, Config{Seed: 1}, src)
	id, _ := w.Spawn("thing", spatial.Vec2{})
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w.Post("evt", id, entity.Int(1))
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	if w.Triggers().Rules() != 0 {
		t.Fatal("once trigger not consumed")
	}
	if err := w.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if w.Triggers().Rules() != 1 {
		t.Fatal("restore did not resurrect the consumed once trigger")
	}
	w.Post("evt", id, entity.Int(1))
	if _, err := w.Step(); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Get(id, "n"); got != entity.Int(1) {
		t.Fatalf("n = %v, want 1 — resurrected once trigger did not fire", got)
	}
}

func TestConsumedOnceMatchDiscardsSpeculativeCondError(t *testing.T) {
	// Two events match a once rule in one round; the first consumes it,
	// and the second's condition would error (its subject's table lacks
	// the column). Serial execution never evaluates that condition, so
	// the effect drain's speculative evaluation must be discarded — the
	// tick completes cleanly with no TriggerErrors.
	src := `
<contentpack name="spec">
  <schema table="a">
    <column name="ok" kind="int" default="1"/>
    <column name="n" kind="int"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <schema table="b">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="first" table="a" script="shout"/>
  <archetype name="second" table="b" script="shout"/>
  <script name="shout">
fn on_tick(self) { emit("hit", self, 1); }
  </script>
  <trigger name="fb" event="hit" once="true">
    <when>get(self, "ok") == 1</when>
    <do>add(self, "n", 1);</do>
  </trigger>
</contentpack>`
	for _, workers := range []int{1, 4} {
		w := loadPack(t, Config{Seed: 1, Workers: workers}, src)
		a, _ := w.Spawn("first", spatial.Vec2{X: 0, Y: 0})
		if _, err := w.Spawn("second", spatial.Vec2{X: 1, Y: 0}); err != nil {
			t.Fatal(err)
		}
		st, err := w.Step()
		if err != nil {
			t.Fatalf("workers=%d: speculative cond of a consumed once rule errored the tick: %v", workers, err)
		}
		if st.TriggerErrors != 0 {
			t.Fatalf("workers=%d: TriggerErrors = %d, want 0", workers, st.TriggerErrors)
		}
		if got, _ := w.Get(a, "n"); got != entity.Int(1) {
			t.Fatalf("workers=%d: n = %v, want 1", workers, got)
		}
	}
}

func TestIsFuelErrUnwrapsJoinChains(t *testing.T) {
	if !isFuelErr(script.ErrFuel) {
		t.Fatal("bare ErrFuel not detected")
	}
	wrapped := fmt.Errorf("rule %q action: %w", "x", fmt.Errorf("line 3: %w", script.ErrFuel))
	if !isFuelErr(wrapped) {
		t.Fatal("wrapped ErrFuel not detected")
	}
	joined := errors.Join(errors.New("other"), wrapped)
	if !isFuelErr(joined) {
		t.Fatal("ErrFuel inside an errors.Join chain not detected")
	}
	if isFuelErr(errors.New("boom")) {
		t.Fatal("unrelated error misdetected as fuel")
	}
}

func TestLastScriptErrorLowestEntityWins(t *testing.T) {
	// Two failing behaviors: the entity with the lowest id errors with
	// a distinguishable message. Whatever the worker count, Step must
	// report that one, not whichever worker finished last.
	src := `
<contentpack name="err">
  <schema table="u">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
  </schema>
  <archetype name="alpha" table="u" script="bad_alpha"/>
  <archetype name="beta" table="u" script="bad_beta"/>
  <script name="bad_alpha">
fn on_tick(self) { get(self, "missing_alpha"); }
  </script>
  <script name="bad_beta">
fn on_tick(self) { get(self, "missing_beta"); }
  </script>
</contentpack>`
	for _, workers := range []int{1, 2, 4} {
		w := loadPack(t, Config{Seed: 1, Workers: workers}, src)
		if _, err := w.Spawn("alpha", spatial.Vec2{X: 0, Y: 0}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := w.Spawn("beta", spatial.Vec2{X: float64(i + 1), Y: 0}); err != nil {
				t.Fatal(err)
			}
		}
		st, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.ScriptErrors != 4 {
			t.Fatalf("errors = %d, want 4", st.ScriptErrors)
		}
		if w.LastScriptError == nil || !strings.Contains(w.LastScriptError.Error(), "missing_alpha") {
			t.Fatalf("workers=%d: LastScriptError = %v, want the lowest entity's (missing_alpha)",
				workers, w.LastScriptError)
		}
	}
}

func TestTableNamesCacheInvalidation(t *testing.T) {
	w := New(Config{Seed: 1})
	if names := w.TableNames(); len(names) != 0 {
		t.Fatalf("names = %v", names)
	}
	s := entity.MustSchema(entity.Column{Name: "a", Kind: entity.KindInt})
	if _, err := w.CreateTable("zeta", s); err != nil {
		t.Fatal(err)
	}
	if names := w.TableNames(); len(names) != 1 || names[0] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	if _, err := w.CreateTable("alpha", s); err != nil {
		t.Fatal(err)
	}
	names := w.TableNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("cache not invalidated by CreateTable: %v", names)
	}
	// The public accessor hands out copies: mutating one must not
	// corrupt the cache.
	names[0] = "corrupted"
	if again := w.TableNames(); again[0] != "alpha" {
		t.Fatalf("TableNames cache aliased caller slice: %v", again)
	}
}
