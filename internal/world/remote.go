package world

// Cross-shard effect forwarding: ghost writes as first-class effect
// records. A behavior that targets a ghost mirror — set, add, despawn or
// post against an entity another shard owns — used to apply against the
// local copy, which the owner's next re-ship silently clobbered. Under
// forwarding, the apply phase partitions the merged effect sequence by
// ownership instead: records whose target has a ghost route are not
// applied locally but sealed into a deterministic, source-ordered
// RemoteEffectBatch per owning shard. The shard runtime carries the
// batches across the tick barrier, and each owner merges the foreign
// records ahead of its next tick in (generation, source shard, source
// id, emission order) — so a remote write lands exactly one tick late,
// with semantics that are a pure function of the records and therefore
// invariant across shard counts.
//
// Under ConflictOCC the partition works at invocation granularity:
// a border invocation (one with at least one remote record) is withheld
// whole — its remote records ship with the invocation's ghost read-set
// attached, its local records are held back, and both sides commit at
// the barrier only if the owner's validation passes. The owner
// invalidates a foreign invocation when its recorded reads overlap
// either the barrier merge's surviving writes (txn.Invalidated) or a
// cell the owner's own tick committed (txn.InvalidatedByCommits —
// local commits always win). Invalidated invocations are re-run on
// their originating shard against freshly re-shipped mirrors, bounded
// by Config.EffectRetryCap.
//
// Forwarding is inert until the shard runtime installs ghost routes
// (SetGhostRoute): with no routes every apply path is bit-identical to
// the pre-forwarding pipeline, so single worlds and manual SetGhost
// users pay nothing.

import (
	"sort"

	"gamedb/internal/entity"
	"gamedb/internal/txn"
)

// RemoteEffect is one forwarded record plus the tick it was generated
// on. Gen orders barrier merges when re-run records (which keep their
// original generation) meet fresh ones: older generations apply first,
// preserving the serial story of the invocation they came from.
type RemoteEffect struct {
	E   Effect
	Gen int64
}

// ForeignKey names one forwarded invocation globally: the shard it ran
// on, its source entity and the tick it was generated on. The id
// allocator never reuses entity ids and each source runs at most one
// invocation per tick, so the triple is unique among the records in
// flight at any barrier.
type ForeignKey struct {
	Shard int
	Src   entity.ID
	Gen   int64
}

// ForeignInvalidation is one owner-side validation verdict: the
// invalidated invocation plus how many times it has already re-run
// (the originating shard aborts it once Retries reaches the retry cap).
type ForeignInvalidation struct {
	Key     ForeignKey
	Retries int
}

// foreignInvoc is the OCC metadata riding along with a border
// invocation's remote records: its identity and the slice of its
// recorded read-set that names cells the receiving owner owns.
type foreignInvoc struct {
	key     ForeignKey
	retries int
	reads   []readCell
}

// RemoteEffectBatch is everything one world forwards to one owning
// shard at a barrier: the remote records in deterministic source order,
// plus (under ConflictOCC) the per-invocation validation metadata.
type RemoteEffectBatch struct {
	Recs   []RemoteEffect
	invocs []foreignInvoc
}

// foreignRec is one inbound record tagged with its origin, the unit the
// barrier merge sorts.
type foreignRec struct {
	e     Effect
	gen   int64
	shard int
}

// heldInvoc is the local half of a border invocation under ConflictOCC:
// records targeting entities this world owns, withheld from the tick
// apply so the invocation commits atomically at the barrier (or not at
// all, when the owner invalidates it).
type heldInvoc struct {
	src     entity.ID
	gen     int64
	retries int
	recs    []Effect
}

// fwdOwner identifies one invocation in the barrier merge's write-set:
// (source shard, source entity).
type fwdOwner struct {
	shard int
	src   entity.ID
}

// invocTag carries the (generation, retry count) a re-run's emissions
// are stamped with.
type invocTag struct {
	gen     int64
	retries int
}

// SetShardIndex tells the world which shard of a sharded runtime it is;
// forwarded invocation metadata is stamped with it. Single worlds keep
// the zero default.
func (w *World) SetShardIndex(i int) { w.shardIdx = i }

// SetGhostRoute installs owner routing for a ghost mirror: effect
// records targeting id will be forwarded to shard owner instead of
// applied locally. The shard runtime refreshes routes at every barrier
// alongside the mirrors themselves; Despawn removes the route with the
// row.
func (w *World) SetGhostRoute(id entity.ID, owner int) {
	if w.ghostOwner == nil {
		w.ghostOwner = make(map[entity.ID]int)
	}
	w.ghostOwner[id] = owner
}

// GhostRoute returns the owning shard a ghost mirror routes to, if a
// route is installed.
func (w *World) GhostRoute(id entity.ID) (int, bool) {
	owner, ok := w.ghostOwner[id]
	return owner, ok
}

// forwardingOn reports whether any ghost routes are installed. All
// forwarding hooks are gated on it, so a world without routes runs the
// pre-forwarding pipeline bit-identically.
func (w *World) forwardingOn() bool { return len(w.ghostOwner) > 0 }

// remoteOwner resolves the owning shard of a record's target. Spawns
// always materialize locally, and provisional targets name entities
// this invocation is spawning here; physics deltas target self, which
// is never a routed ghost.
func (w *World) remoteOwner(e *Effect) (int, bool) {
	if e.Kind == EffectSpawn || e.Target >= provBase {
		return 0, false
	}
	owner, ok := w.ghostOwner[e.Target]
	return owner, ok
}

// outboundFor returns (creating on first use) the batch bound for owner.
func (w *World) outboundFor(owner int) *RemoteEffectBatch {
	if w.outbound == nil {
		w.outbound = make(map[int]*RemoteEffectBatch)
	}
	b := w.outbound[owner]
	if b == nil {
		b = &RemoteEffectBatch{}
		w.outbound[owner] = b
	}
	return b
}

// partitionRemote is the ConflictLastWrite partition: remote records
// move individually from the merged sequence into the per-owner
// outbound batches (stamped with the current tick as their generation);
// everything else stays. The returned slice aliases merged's prefix.
func (w *World) partitionRemote(merged []Effect) []Effect {
	out := merged[:0]
	for i := range merged {
		e := &merged[i]
		if owner, ok := w.remoteOwner(e); ok {
			b := w.outboundFor(owner)
			b.Recs = append(b.Recs, RemoteEffect{E: *e, Gen: w.tick})
			w.statForwarded++
			continue
		}
		out = append(out, *e)
	}
	return out
}

// partitionRemoteInvocs is the ConflictOCC partition: it walks merged
// in source-contiguous runs (one run per invocation — the sequence is
// sorted by source, or serially emitted) and withholds every border
// invocation whole. Remote records go to their owners' batches, local
// records to heldLocal; withMeta attaches the invocation's ForeignKey
// and owner-filtered read-set to each touched batch so the owner can
// validate and request a re-run (the behavior phase and barrier re-runs
// pass true; trigger rounds have no cross-barrier re-run context and
// forward without metadata). Physics deltas sharing a border source's
// id are not part of the invocation and stay in the local sequence.
// tag supplies the (generation, retries) stamp per source. The returned
// slice aliases merged's prefix.
func (w *World) partitionRemoteInvocs(merged []Effect, bufs []*EffectBuffer, withMeta bool, tag func(entity.ID) (int64, int)) []Effect {
	anyRemote := false
	for i := range merged {
		if _, ok := w.remoteOwner(&merged[i]); ok {
			anyRemote = true
			break
		}
	}
	if !anyRemote {
		return merged
	}
	if withMeta {
		w.buildReadIndex(bufs)
	}
	if w.fwdOwnerSet == nil {
		w.fwdOwnerSet = make(map[int]struct{})
	}
	out := merged[:0]
	for i := 0; i < len(merged); {
		j := i + 1
		for j < len(merged) && merged[j].Src == merged[i].Src {
			j++
		}
		border := false
		for k := i; k < j; k++ {
			if merged[k].Seq >= physicsSeq {
				continue
			}
			if _, ok := w.remoteOwner(&merged[k]); ok {
				border = true
				break
			}
		}
		if !border {
			out = append(out, merged[i:j]...)
			i = j
			continue
		}
		src := merged[i].Src
		gen, retries := tag(src)
		clear(w.fwdOwnerSet)
		var local []Effect
		for k := i; k < j; k++ {
			e := &merged[k]
			if e.Seq >= physicsSeq {
				out = append(out, *e)
				continue
			}
			if owner, ok := w.remoteOwner(e); ok {
				b := w.outboundFor(owner)
				b.Recs = append(b.Recs, RemoteEffect{E: *e, Gen: gen})
				w.fwdOwnerSet[owner] = struct{}{}
				w.statForwarded++
				continue
			}
			local = append(local, *e)
		}
		if len(local) > 0 {
			w.heldLocal = append(w.heldLocal, heldInvoc{src: src, gen: gen, retries: retries, recs: local})
		}
		if withMeta {
			owners := make([]int, 0, len(w.fwdOwnerSet))
			for o := range w.fwdOwnerSet {
				owners = append(owners, o)
			}
			sort.Ints(owners)
			reads := w.occReadIdx[src]
			for _, owner := range owners {
				var fr []readCell
				for _, c := range reads {
					if o, ok := w.ghostOwner[c.id]; ok && o == owner {
						fr = append(fr, c)
					}
				}
				b := w.outboundFor(owner)
				b.invocs = append(b.invocs, foreignInvoc{
					key:     ForeignKey{Shard: w.shardIdx, Src: src, Gen: gen},
					retries: retries,
					reads:   fr,
				})
			}
		}
		i = j
	}
	return out
}

// TakeOutbound hands the accumulated per-owner batches to the shard
// runtime and resets the world's outbound state. Nil when nothing was
// forwarded this tick.
func (w *World) TakeOutbound() map[int]*RemoteEffectBatch {
	if len(w.outbound) == 0 {
		return nil
	}
	out := w.outbound
	w.outbound = nil
	return out
}

// QueueForeign enqueues one source shard's batch for this barrier's
// validate/merge. srcShard is authoritative for the records' origin
// ordering (and overwrites whatever the sender stamped).
func (w *World) QueueForeign(srcShard int, b *RemoteEffectBatch) {
	for i := range b.Recs {
		r := &b.Recs[i]
		w.inRecs = append(w.inRecs, foreignRec{e: r.E, gen: r.Gen, shard: srcShard})
	}
	for i := range b.invocs {
		inv := b.invocs[i]
		inv.key.Shard = srcShard
		w.inInvocs = append(w.inInvocs, inv)
	}
}

// sortForeignRecs orders barrier records by (generation, source shard,
// source id, emission order) — the one deterministic exchange order.
func sortForeignRecs(recs []foreignRec) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.gen != b.gen {
			return a.gen < b.gen
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		if a.e.Src != b.e.Src {
			return a.e.Src < b.e.Src
		}
		return a.e.Seq < b.e.Seq
	})
}

// buildExchangeRecs combines this barrier's foreign records with the
// world's own held border-invocation records into the exchange order.
// The result aliases w.exRecs and is valid until the next call.
func (w *World) buildExchangeRecs() []foreignRec {
	recs := w.exRecs[:0]
	for i := range w.heldLocal {
		h := &w.heldLocal[i]
		for _, e := range h.recs {
			recs = append(recs, foreignRec{e: e, gen: h.gen, shard: w.shardIdx})
		}
	}
	recs = append(recs, w.inRecs...)
	sortForeignRecs(recs)
	w.exRecs = recs
	return recs
}

// ValidateForeign runs the owner side of cross-shard OCC for this
// barrier: each queued foreign invocation is invalidated when its
// recorded reads overlap a cell this world's own tick committed a
// write to (local commits always win — the reader saw a stale mirror),
// or a cell some other invocation's surviving write in the barrier
// merge owns (txn.Invalidated over the exchange write-set, which
// includes the world's own held border writes). Verdicts are returned
// for the runtime to union across owners and route back to the
// originating shards; the caller must collect every world's verdicts
// before any ExchangeApply runs.
func (w *World) ValidateForeign() []ForeignInvalidation {
	if len(w.inInvocs) == 0 {
		return nil
	}
	recs := w.buildExchangeRecs()
	ws := &w.fwdWrites
	ws.Reset()
	for i := range recs {
		e := &recs[i].e
		if e.Kind == EffectSet && e.Target < provBase {
			ws.Note(readCell{id: e.Target, col: e.Col}, fwdOwner{shard: recs[i].shard, src: e.Src})
		}
	}
	sort.Slice(w.inInvocs, func(i, j int) bool {
		a, b := &w.inInvocs[i].key, &w.inInvocs[j].key
		if a.Gen != b.Gen {
			return a.Gen < b.Gen
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Src < b.Src
	})
	var out []ForeignInvalidation
	for i := range w.inInvocs {
		inv := &w.inInvocs[i]
		self := fwdOwner{shard: inv.key.Shard, src: inv.key.Src}
		if txn.InvalidatedByCommits(inv.reads, w.tickWrites) ||
			txn.Invalidated(self, inv.reads, ws) {
			out = append(out, ForeignInvalidation{Key: inv.key, Retries: inv.retries})
		}
	}
	w.pendRemoteInval += len(out)
	return out
}

// ExchangeApply commits this barrier's exchange at one world: the
// foreign records plus the world's own held border-invocation records,
// minus every invocation in invalid, merged in exchange order and
// applied through the ordinary apply passes. It returns the number of
// foreign records merged; conflicts (e.g. a record against an entity
// despawned since the route was taken) fold into the next tick's stats.
// Consumes the inbound and held state.
func (w *World) ExchangeApply(invalid map[ForeignKey]struct{}) int {
	if len(w.inRecs) == 0 && len(w.heldLocal) == 0 {
		w.inInvocs = w.inInvocs[:0]
		return 0
	}
	recs := w.buildExchangeRecs()
	effs := w.exEffects[:0]
	foreign := 0
	for i := range recs {
		r := &recs[i]
		if len(invalid) > 0 {
			if _, bad := invalid[ForeignKey{Shard: r.shard, Src: r.e.Src, Gen: r.gen}]; bad {
				continue
			}
		}
		if r.shard != w.shardIdx {
			foreign++
		}
		effs = append(effs, r.e)
	}
	w.exEffects = effs
	conflicts := 0
	w.inExchange = true
	w.applyMerged(effs, &conflicts)
	w.inExchange = false
	w.pendConflicts += conflicts
	w.pendRemoteMerged += foreign
	w.pendEffects += len(effs)
	w.inRecs = w.inRecs[:0]
	w.inInvocs = w.inInvocs[:0]
	w.heldLocal = w.heldLocal[:0]
	return foreign
}

// RerunForeign re-executes this world's invalidated border invocations
// at the barrier, after the owners' merges have been re-shipped into
// fresh mirrors. Re-runs go serially in (generation, origin, source)
// order on worker slot 0's interpreter clones; an invocation that has
// exhausted the retry cap — or errors, or whose entity despawned —
// aborts. Emissions partition again: a re-run's remote records keep the
// invocation's original generation (so they merge ahead of the next
// tick's records at the owner) with an incremented retry count, its
// local records hold for the next barrier, and purely local results
// apply immediately. All accounting folds into the next tick's stats.
func (w *World) RerunForeign(reruns []ForeignInvalidation) {
	if len(reruns) == 0 {
		return
	}
	sort.Slice(reruns, func(i, j int) bool {
		a, b := &reruns[i].Key, &reruns[j].Key
		if a.Gen != b.Gen {
			return a.Gen < b.Gen
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Src < b.Src
	})
	w.ensureWorkers(1)
	buf := w.workerBufs[0]
	buf.reset()
	rcap := w.effectRetryCap()
	tags := make(map[entity.ID]invocTag, len(reruns))
	for i := range reruns {
		r := &reruns[i]
		if r.Retries >= rcap {
			w.pendAborts++
			continue
		}
		w.pendRetries++
		mark := buf.begin(r.Key.Src)
		fuel, err := w.rerunBehavior(r.Key.Src)
		w.pendFuel += fuel
		if err != nil {
			buf.rollback(mark)
			w.pendAborts++
			continue
		}
		tags[r.Key.Src] = invocTag{gen: r.Key.Gen, retries: r.Retries + 1}
	}
	buf.closeInvoc()
	merged := buf.effects
	if len(merged) == 0 {
		return
	}
	if w.forwardingOn() {
		merged = w.partitionRemoteInvocs(merged, w.workerBufs[:1], true, func(src entity.ID) (int64, int) {
			t := tags[src]
			return t.gen, t.retries
		})
	}
	if len(merged) == 0 {
		return
	}
	sortEffects(merged)
	// Local writes committed here land after this barrier's re-ship, so
	// next tick's foreign readers of these cells see pre-re-run mirrors;
	// carry the cells into the next tick's committed-write set so those
	// readers invalidate.
	if w.tickWrites != nil {
		for i := range merged {
			e := &merged[i]
			if e.Kind == EffectSet && e.Target < provBase {
				w.pendWrites = append(w.pendWrites, readCell{id: e.Target, col: e.Col})
			}
		}
	}
	conflicts := 0
	w.inExchange = true
	w.applyMerged(merged, &conflicts)
	w.inExchange = false
	w.pendConflicts += conflicts
	w.pendEffects += len(merged)
}

// foldPending folds the accounting of the barrier work done since the
// last tick — exchange merges, validation verdicts, re-runs — into the
// new tick's stats, and rotates the committed-write set the owner-side
// validation reads.
func (w *World) foldPending(st *TickStats) {
	if w.tickWrites != nil {
		clear(w.tickWrites)
	} else if w.occEnabled() && w.forwardingOn() {
		w.tickWrites = make(map[readCell]struct{})
	}
	if w.tickWrites != nil {
		for _, c := range w.pendWrites {
			w.tickWrites[c] = struct{}{}
		}
	}
	w.pendWrites = w.pendWrites[:0]
	st.EffectsRemoteMerged = w.pendRemoteMerged
	st.RemoteInvalidations = w.pendRemoteInval
	st.Effects += w.pendEffects
	st.EffectConflicts += w.pendConflicts
	st.EffectRetries += w.pendRetries
	st.EffectAborts += w.pendAborts
	st.FuelUsed += w.pendFuel
	w.pendRemoteMerged, w.pendRemoteInval, w.pendEffects = 0, 0, 0
	w.pendConflicts, w.pendRetries, w.pendAborts = 0, 0, 0
	w.pendFuel = 0
}

// resetForwarding clears every piece of forwarding state; ResetState
// (and through it snapshot Restore) uses it — in-flight barrier records
// are not part of a snapshot.
func (w *World) resetForwarding() {
	w.ghostOwner = nil
	w.outbound = nil
	w.inRecs = nil
	w.inInvocs = nil
	w.heldLocal = nil
	w.tickWrites = nil
	w.pendWrites = nil
	w.exRecs = nil
	w.exEffects = nil
	w.statForwarded = 0
	w.pendRemoteMerged, w.pendRemoteInval, w.pendEffects = 0, 0, 0
	w.pendConflicts, w.pendRetries, w.pendAborts = 0, 0, 0
	w.pendFuel = 0
}
