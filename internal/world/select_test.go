package world

import (
	"strings"
	"testing"

	"gamedb/internal/content"
	"gamedb/internal/entity"
	"gamedb/internal/query"
	"gamedb/internal/spatial"
)

func TestWorldSelectUsesPlanner(t *testing.T) {
	w := loadArena(t)
	tab, _ := w.Table("units")
	if err := tab.CreateHashIndex("faction"); err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateOrderedIndex("hp"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		arch := "grunt"
		if i%3 == 0 {
			arch = "dummy"
		}
		if _, err := w.Spawn(arch, spatial.Vec2{X: float64(i), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}

	rows, d, path, err := w.Select("units", query.Eq(query.Col("units.faction"), query.ConstStr("blue")))
	if err != nil {
		t.Fatal(err)
	}
	if path != "index-eq(faction)" {
		t.Fatalf("path = %q", path)
	}
	if len(rows) != 10 {
		t.Fatalf("blue units = %d, want 10", len(rows))
	}
	fi, _ := d.Col("units.faction")
	for _, r := range rows {
		if r[fi] != entity.Str("blue") {
			t.Fatalf("leaked row %v", r)
		}
	}

	// Range over hp uses the ordered index; grunts have hp 40.
	n, err := w.CountWhere("units", query.And(
		query.Ge(query.Col("units.hp"), query.ConstInt(20)),
		query.Le(query.Col("units.hp"), query.ConstInt(50))))
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("hp range count = %d, want 20 grunts", n)
	}

	// Unknown table errors.
	if _, _, _, err := w.Select("nope", nil); err == nil {
		t.Fatal("unknown table should fail")
	}
	if _, err := w.CountWhere("nope", nil); err == nil {
		t.Fatal("unknown table should fail")
	}
}

// TestEndToEndShard exercises every world subsystem together for many
// ticks: scripted behavior mutating indexed state, triggers cascading,
// declarative queries between ticks, snapshot/restore mid-run.
func TestEndToEndShard(t *testing.T) {
	const pack = `
<contentpack name="stress">
  <schema table="units">
    <column name="hp" kind="int" default="100"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="stress" kind="int"/>
  </schema>
  <archetype name="mob" table="units" script="mill">
    <set column="hp" value="60"/>
  </archetype>
  <script name="mill">
fn on_tick(self) {
  move_toward(self, 50.0, 50.0, 0.8);
  let crowd = nearby(self, 6.0);
  if len(crowd) > 4 {
    emit("crowded", self, len(crowd));
  }
}
  </script>
  <trigger name="stress-up" event="crowded">
    <when>amount &gt; 4</when>
    <do>set(self, "stress", get(self, "stress") + 1);</do>
  </trigger>
</contentpack>`
	c, errs := content.LoadAndCompile(strings.NewReader(pack))
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	w := New(Config{Seed: 5, CellSize: 8})
	if err := w.LoadPack(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := w.Spawn("mob", spatial.Vec2{X: float64(i * 3 % 100), Y: float64(i * 7 % 100)}); err != nil {
			t.Fatal(err)
		}
	}
	var snap []byte
	for tick := 0; tick < 120; tick++ {
		st, err := w.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if st.ScriptErrors > 0 {
			t.Fatalf("tick %d: script error: %v", tick, w.LastScriptError)
		}
		if tick == 60 {
			snap, err = w.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Everyone converged on the rally point; crowding must have fired.
	stressed, err := w.CountWhere("units", query.Gt(query.Col("units.stress"), query.ConstInt(0)))
	if err != nil {
		t.Fatal(err)
	}
	if stressed == 0 {
		t.Fatal("no entity ever got crowded; simulation shape wrong")
	}
	// Restore mid-run snapshot and keep simulating without errors.
	if err := w.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if w.Tick() != 61 {
		t.Fatalf("restored tick = %d", w.Tick())
	}
	for tick := 0; tick < 30; tick++ {
		st, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.ScriptCalls != 60 {
			t.Fatalf("post-restore script calls = %d, want 60", st.ScriptCalls)
		}
	}
	if w.Entities() != 60 {
		t.Fatalf("entities = %d", w.Entities())
	}
}
