package world

import (
	"fmt"

	"gamedb/internal/query"
)

// Select runs a declarative predicate query over one of the world's
// tables, letting the planner pick an index (hash for equality, ordered
// for ranges) the way refs [11]/[13] advocate: game logic states *what*,
// the engine chooses *how*. It returns the rows, their descriptor and
// the chosen access path.
//
// The world must not be mutated while the result is being consumed;
// call from the simulation goroutine between ticks.
func (w *World) Select(table string, pred query.Expr) ([]query.Tuple, *query.Desc, string, error) {
	t, ok := w.tables[table]
	if !ok {
		return nil, nil, "", fmt.Errorf("world: unknown table %q", table)
	}
	op, path := query.PlanSelect(t, pred)
	rows, desc, err := query.Run(op)
	if err != nil {
		return nil, nil, path, err
	}
	return rows, desc, path, nil
}

// CountWhere runs Select and returns only the row count.
func (w *World) CountWhere(table string, pred query.Expr) (int, error) {
	t, ok := w.tables[table]
	if !ok {
		return 0, fmt.Errorf("world: unknown table %q", table)
	}
	op, _ := query.PlanSelect(t, pred)
	return query.Count(op)
}
