package world

import (
	"math"
	"math/rand"
	"testing"

	"gamedb/internal/entity"
	"gamedb/internal/spatial"
	"gamedb/internal/wire"
)

func randWireValue(rng *rand.Rand) entity.Value {
	switch rng.Intn(5) {
	case 0:
		return entity.Int(rng.Int63() - rng.Int63())
	case 1:
		return entity.Float(rng.NormFloat64())
	case 2:
		return entity.Str([]string{"", "hp", "x", "raider_speed"}[rng.Intn(4)])
	case 3:
		return entity.Bool(rng.Intn(2) == 0)
	default:
		return entity.Null()
	}
}

func randEffect(rng *rand.Rand) Effect {
	return Effect{
		Kind:   EffectKind(rng.Intn(5)),
		Src:    entity.ID(rng.Uint64() >> 1),
		Seq:    int32(rng.Int31() - rng.Int31()),
		Target: entity.ID(rng.Uint64() >> 1),
		Col:    []string{"", "x", "y", "met"}[rng.Intn(4)],
		Val:    randWireValue(rng),
		Name:   []string{"", "unit", "raider", "ping"}[rng.Intn(4)],
		Pos:    spatial.Vec2{X: rng.NormFloat64(), Y: rng.NormFloat64()},
	}
}

func batchesEqual(t *testing.T, a, b *RemoteEffectBatch) {
	t.Helper()
	if len(a.Recs) != len(b.Recs) || len(a.invocs) != len(b.invocs) {
		t.Fatalf("batch shape: got %d/%d recs/invocs, want %d/%d",
			len(b.Recs), len(b.invocs), len(a.Recs), len(a.invocs))
	}
	for i := range a.Recs {
		ra, rb := a.Recs[i], b.Recs[i]
		if ra.Gen != rb.Gen || ra.E.Kind != rb.E.Kind || ra.E.Src != rb.E.Src ||
			ra.E.Seq != rb.E.Seq || ra.E.Target != rb.E.Target || ra.E.Col != rb.E.Col ||
			ra.E.Name != rb.E.Name ||
			math.Float64bits(ra.E.Pos.X) != math.Float64bits(rb.E.Pos.X) ||
			math.Float64bits(ra.E.Pos.Y) != math.Float64bits(rb.E.Pos.Y) {
			t.Fatalf("rec %d mismatch: got %+v want %+v", i, rb, ra)
		}
		if ra.E.Val.Kind() != rb.E.Val.Kind() {
			t.Fatalf("rec %d value kind mismatch", i)
		}
	}
	for i := range a.invocs {
		ia, ib := a.invocs[i], b.invocs[i]
		if ia.key.Src != ib.key.Src || ia.key.Gen != ib.key.Gen || ia.retries != ib.retries ||
			len(ia.reads) != len(ib.reads) {
			t.Fatalf("invoc %d mismatch: got %+v want %+v", i, ib, ia)
		}
		for j := range ia.reads {
			if ia.reads[j] != ib.reads[j] {
				t.Fatalf("invoc %d read %d mismatch", i, j)
			}
		}
	}
}

// TestRemoteBatchRoundTrip drives randomized batches — including empty
// ones, despawn-only batches, and OCC read-set metadata — through
// encode→decode and checks identity.
func TestRemoteBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var e wire.Enc
	in := wire.NewInterner()
	var got RemoteEffectBatch
	for iter := 0; iter < 100; iter++ {
		var b RemoteEffectBatch
		switch iter % 4 {
		case 0: // empty
		case 1: // despawn-only feed
			for i := 0; i < rng.Intn(5)+1; i++ {
				b.Recs = append(b.Recs, RemoteEffect{
					E:   Effect{Kind: EffectDespawn, Src: entity.ID(i + 1), Target: entity.ID(i + 1)},
					Gen: int64(iter),
				})
			}
		default: // mixed with OCC metadata
			for i := 0; i < rng.Intn(8); i++ {
				b.Recs = append(b.Recs, RemoteEffect{E: randEffect(rng), Gen: rng.Int63()})
			}
			for i := 0; i < rng.Intn(3); i++ {
				inv := foreignInvoc{
					key:     ForeignKey{Src: entity.ID(rng.Uint64() >> 1), Gen: rng.Int63()},
					retries: rng.Intn(4),
				}
				for j := 0; j < rng.Intn(4); j++ {
					inv.reads = append(inv.reads, readCell{id: entity.ID(rng.Uint64() >> 1), col: "hp"})
				}
				b.invocs = append(b.invocs, inv)
			}
		}
		e.Reset()
		AppendRemoteBatch(&e, &b)
		d := wire.NewDec(e.Bytes(), in)
		got.Recs = got.Recs[:0]
		got.invocs = got.invocs[:0]
		DecodeRemoteBatch(d, &got)
		if d.Err() != nil {
			t.Fatalf("iter %d: decode: %v", iter, d.Err())
		}
		if d.Remaining() != 0 {
			t.Fatalf("iter %d: %d leftover bytes", iter, d.Remaining())
		}
		batchesEqual(t, &b, &got)
	}
}

// TestVerdictsRoundTrip checks validation-verdict encode→decode
// identity, empty slices included.
func TestVerdictsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var e wire.Enc
	for iter := 0; iter < 50; iter++ {
		vs := make([]ForeignInvalidation, rng.Intn(6))
		for i := range vs {
			vs[i] = ForeignInvalidation{
				Key:     ForeignKey{Shard: rng.Intn(8), Src: entity.ID(rng.Uint64() >> 1), Gen: rng.Int63()},
				Retries: rng.Intn(5),
			}
		}
		e.Reset()
		AppendVerdicts(&e, vs)
		d := wire.NewDec(e.Bytes(), nil)
		got := DecodeVerdicts(d, nil)
		if d.Err() != nil {
			t.Fatalf("decode: %v", d.Err())
		}
		if len(got) != len(vs) {
			t.Fatalf("len: got %d want %d", len(got), len(vs))
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("verdict %d: got %+v want %+v", i, got[i], vs[i])
			}
		}
	}
}

// TestRemoteBatchCorrupt checks decode rejects truncated payloads and
// absurd counts without allocating or panicking.
func TestRemoteBatchCorrupt(t *testing.T) {
	var e wire.Enc
	b := RemoteEffectBatch{
		Recs: []RemoteEffect{{E: Effect{Kind: EffectSet, Src: 5, Target: 5, Col: "x", Val: entity.Float(1)}, Gen: 9}},
		invocs: []foreignInvoc{{
			key: ForeignKey{Src: 5, Gen: 9}, retries: 1,
			reads: []readCell{{id: 7, col: "x"}},
		}},
	}
	AppendRemoteBatch(&e, &b)
	full := e.Bytes()
	var got RemoteEffectBatch
	for i := 0; i < len(full); i++ {
		d := wire.NewDec(full[:i], nil)
		DecodeRemoteBatch(d, &got)
		if d.Err() == nil {
			t.Fatalf("truncated batch at %d decoded without error", i)
		}
	}
	// Absurd record count.
	e.Reset()
	e.Uvarint(1 << 50)
	d := wire.NewDec(e.Bytes(), nil)
	DecodeRemoteBatch(d, &got)
	if d.Err() == nil {
		t.Fatalf("oversized record count accepted")
	}
	// Absurd verdict count.
	d = wire.NewDec(e.Bytes(), nil)
	if DecodeVerdicts(d, nil); d.Err() == nil {
		t.Fatalf("oversized verdict count accepted")
	}
}
