package replica

import (
	"gamedb/internal/wire"
)

// Client-protocol message tags. The hub's fan-out queues model these
// messages; under HubConfig.WireSizing each queued message is priced
// by actually encoding it with the internal/wire codec — the same
// codec the shard tick barrier ships frames with — instead of the
// fixed modeled constants (msgBytes, removeBytes, snapshotBytesPer).
const (
	msgTagUpdate   byte = 1
	msgTagRemove   byte = 2
	msgTagSnapshot byte = 3
)

// AppendUpdateMsg encodes one field-update delta: tag, entity id,
// field index, raw float payload.
func AppendUpdateMsg(e *wire.Enc, id ID, fi int32, val float64) {
	e.U8(msgTagUpdate)
	e.Uvarint(uint64(id))
	e.Uvarint(uint64(fi))
	e.F64(val)
}

// UpdateMsg is one decoded field-update delta.
type UpdateMsg struct {
	ID    ID
	Field int32
	Val   float64
}

// DecodeUpdateMsg decodes an update message (tag included).
func DecodeUpdateMsg(d *wire.Dec) UpdateMsg {
	if d.U8() != msgTagUpdate {
		d.Fail("update tag")
		return UpdateMsg{}
	}
	return UpdateMsg{ID: ID(d.Uvarint()), Field: int32(d.Uvarint()), Val: d.F64()}
}

// AppendRemoveMsg encodes one entity-removal message: tag, entity id.
func AppendRemoveMsg(e *wire.Enc, id ID) {
	e.U8(msgTagRemove)
	e.Uvarint(uint64(id))
}

// DecodeRemoveMsg decodes a removal message and returns the entity id.
func DecodeRemoveMsg(d *wire.Dec) ID {
	if d.U8() != msgTagRemove {
		d.Fail("remove tag")
		return 0
	}
	return ID(d.Uvarint())
}

// AppendSnapshotMsg encodes one full-entity snapshot: tag, entity id,
// field count, raw float payloads in spec order.
func AppendSnapshotMsg(e *wire.Enc, id ID, vals []float64) {
	e.U8(msgTagSnapshot)
	e.Uvarint(uint64(id))
	e.Uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.F64(v)
	}
}

// DecodeSnapshotMsg decodes a snapshot message, appending values onto
// dst.
func DecodeSnapshotMsg(d *wire.Dec, dst []float64) (ID, []float64) {
	if d.U8() != msgTagSnapshot {
		d.Fail("snapshot tag")
		return 0, dst
	}
	id := ID(d.Uvarint())
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		d.Fail("snapshot field count")
		return id, dst
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		dst = append(dst, d.F64())
	}
	return id, dst
}
