package replica

import (
	"math"
	"math/rand"
	"testing"

	"gamedb/internal/spatial"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer([]FieldSpec{
		{Name: "hp", Class: Exact},
		{Name: "x", Class: Coarse, Epsilon: 2.0, MaxAge: 10},
		{Name: "anim", Class: Cosmetic, Period: 4},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer([]FieldSpec{{Name: ""}}, 10); err == nil {
		t.Fatal("empty field name should fail")
	}
	if _, err := NewServer([]FieldSpec{{Name: "a"}, {Name: "a"}}, 10); err == nil {
		t.Fatal("duplicate field should fail")
	}
	s := newTestServer(t)
	if err := s.Set(99, "hp", 1); err == nil {
		t.Fatal("unknown entity should fail")
	}
	s.Spawn(1, spatial.Vec2{})
	if err := s.Set(1, "zzz", 1); err == nil {
		t.Fatal("unknown field should fail")
	}
	if _, err := s.Get(1, "zzz"); err == nil {
		t.Fatal("unknown field get should fail")
	}
}

func TestExactFieldShipsEveryChange(t *testing.T) {
	s := newTestServer(t)
	s.Spawn(1, spatial.Vec2{X: 50, Y: 50})
	c := s.AddClient("c1", spatial.Vec2{X: 50, Y: 50}, 200)
	s.FlushTick() // snapshot on entry
	if !c.Has(1) || c.Snapshots != 1 {
		t.Fatalf("entity not snapshotted: has=%v snaps=%d", c.Has(1), c.Snapshots)
	}
	base := c.Msgs
	s.Set(1, "hp", 90)
	s.FlushTick()
	if c.Msgs != base+1 {
		t.Fatalf("exact change shipped %d msgs, want 1", c.Msgs-base)
	}
	if v, _ := c.value(1, 0); v != 90 {
		t.Fatalf("client hp = %v", v)
	}
	// No change → no message.
	s.FlushTick()
	if c.Msgs != base+1 {
		t.Fatal("idle tick should ship nothing")
	}
}

func TestCoarseFieldEpsilonSuppression(t *testing.T) {
	s := newTestServer(t)
	s.Spawn(1, spatial.Vec2{X: 50, Y: 50})
	c := s.AddClient("c1", spatial.Vec2{X: 50, Y: 50}, 200)
	s.FlushTick()
	base := c.Msgs
	// Small drifts below epsilon=2: suppressed.
	s.Set(1, "x", 1.0)
	s.FlushTick()
	if c.Msgs != base {
		t.Fatal("sub-epsilon drift should not ship")
	}
	div, _ := s.Divergence(c, "x")
	if div != 1.0 {
		t.Fatalf("divergence = %v", div)
	}
	// Cross epsilon: ships.
	s.Set(1, "x", 3.5)
	s.FlushTick()
	if c.Msgs != base+1 {
		t.Fatalf("super-epsilon drift should ship, msgs=%d", c.Msgs-base)
	}
	if div, _ := s.Divergence(c, "x"); div != 0 {
		t.Fatalf("post-ship divergence = %v", div)
	}
}

func TestCoarseMaxAgeForcesShip(t *testing.T) {
	s := newTestServer(t)
	s.Spawn(1, spatial.Vec2{X: 50, Y: 50})
	c := s.AddClient("c1", spatial.Vec2{X: 50, Y: 50}, 200)
	s.FlushTick()
	base := c.Msgs
	s.Set(1, "x", 1.5) // below epsilon, would never ship on drift alone
	for i := 0; i < 12; i++ {
		s.FlushTick()
	}
	if c.Msgs != base+1 {
		t.Fatalf("MaxAge should force exactly one ship, got %d", c.Msgs-base)
	}
}

func TestCosmeticPeriod(t *testing.T) {
	s := newTestServer(t)
	s.Spawn(1, spatial.Vec2{X: 50, Y: 50})
	c := s.AddClient("c1", spatial.Vec2{X: 50, Y: 50}, 200)
	s.FlushTick()
	base := c.Msgs
	// Change anim every tick for 8 ticks; Period=4 → ships on tick%4==0.
	ships := int64(0)
	for i := 0; i < 8; i++ {
		s.Set(1, "anim", float64(i+1))
		s.FlushTick()
	}
	ships = c.Msgs - base
	if ships != 2 {
		t.Fatalf("cosmetic shipped %d, want 2 (every 4th tick)", ships)
	}
}

func TestInterestManagement(t *testing.T) {
	s := newTestServer(t)
	s.Spawn(1, spatial.Vec2{X: 0, Y: 0})
	s.Spawn(2, spatial.Vec2{X: 1000, Y: 1000})
	c := s.AddClient("c1", spatial.Vec2{X: 0, Y: 0}, 50)
	s.FlushTick()
	if !c.Has(1) || c.Has(2) {
		t.Fatalf("AOI filter wrong: has1=%v has2=%v", c.Has(1), c.Has(2))
	}
	// Entity 2 walks into range → snapshot; entity 1 leaves → dropped.
	s.MoveEntity(2, spatial.Vec2{X: 10, Y: 10})
	s.MoveEntity(1, spatial.Vec2{X: 2000, Y: 0})
	s.FlushTick()
	if c.Has(1) || !c.Has(2) {
		t.Fatalf("AOI transition wrong: has1=%v has2=%v", c.Has(1), c.Has(2))
	}
	if c.Snapshots != 2 {
		t.Fatalf("snapshots = %d, want 2", c.Snapshots)
	}
}

func TestDespawnStopsReplication(t *testing.T) {
	s := newTestServer(t)
	s.Spawn(1, spatial.Vec2{X: 0, Y: 0})
	c := s.AddClient("c1", spatial.Vec2{}, 100)
	s.FlushTick()
	s.Despawn(1)
	s.FlushTick()
	if c.Has(1) {
		t.Fatal("despawned entity still replicated")
	}
}

func TestCrossClientDivergence(t *testing.T) {
	s := newTestServer(t)
	s.Spawn(1, spatial.Vec2{X: 50, Y: 50})
	// Client B has a tighter view (joins later): create divergence by
	// changing a coarse field below epsilon after A's snapshot.
	a := s.AddClient("a", spatial.Vec2{X: 50, Y: 50}, 200)
	s.FlushTick()
	s.Set(1, "x", 1.5)
	_ = a
	b := s.AddClient("b", spatial.Vec2{X: 50, Y: 50}, 200)
	s.FlushTick() // b snapshots at x=1.5; a still has 0
	d, err := s.CrossClientDivergence(a, b, "x")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.5) > 1e-9 {
		t.Fatalf("cross-client divergence = %v, want 1.5", d)
	}
}

// TestTierBandwidthOrdering verifies the paper's qualitative claim: under
// the same update stream, exact ships the most messages, coarse fewer,
// cosmetic fewest — while exact divergence stays zero after each flush.
func TestTierBandwidthOrdering(t *testing.T) {
	s, err := NewServer([]FieldSpec{
		{Name: "exact", Class: Exact},
		{Name: "coarse", Class: Coarse, Epsilon: 3, MaxAge: 50},
		{Name: "cosmetic", Class: Cosmetic, Period: 8},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := spatial.ID(1); i <= 20; i++ {
		s.Spawn(i, spatial.Vec2{X: 50, Y: 50})
	}
	c := s.AddClient("c", spatial.Vec2{X: 50, Y: 50}, 500)
	s.FlushTick()
	perField := make(map[string]int64)
	before := map[string]int64{}
	// Random-walk all three fields identically for 200 ticks.
	vals := make(map[spatial.ID]float64)
	msgsAt := func() int64 { return c.Msgs }
	for _, field := range []string{"exact", "coarse", "cosmetic"} {
		before[field] = msgsAt()
		for tick := 0; tick < 200; tick++ {
			for i := spatial.ID(1); i <= 20; i++ {
				vals[i] += rng.NormFloat64()
				s.Set(i, field, vals[i])
			}
			s.FlushTick()
		}
		perField[field] = msgsAt() - before[field]
		// Reset walk state between fields.
		for k := range vals {
			delete(vals, k)
		}
	}
	// The paper's claim: weakened tiers ship (much) less than exact.
	// Coarse vs cosmetic ordering depends on epsilon/period parameters,
	// so only the exact-dominates relation is asserted.
	if perField["exact"] <= perField["coarse"] || perField["exact"] <= perField["cosmetic"] {
		t.Fatalf("weak tiers should ship less than exact: %v", perField)
	}
	if perField["coarse"] == 0 || perField["cosmetic"] == 0 {
		t.Fatalf("weak tiers should still ship something: %v", perField)
	}
	if d, _ := s.Divergence(c, "exact"); d != 0 {
		t.Fatalf("exact divergence after flush = %v", d)
	}
}
