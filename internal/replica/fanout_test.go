package replica

import (
	"testing"

	"gamedb/internal/spatial"
)

// hubSpecs: one of each class, epsilon/period values chosen so tests
// can steer each gate independently.
func hubSpecs() []FieldSpec {
	return []FieldSpec{
		{Name: "hp", Class: Exact},
		{Name: "x", Class: Coarse, Epsilon: 1.0, MaxAge: 5},
		{Name: "anim", Class: Cosmetic, Period: 2},
	}
}

func newTestHub(budget int) *Hub {
	return NewHub(HubConfig{Specs: hubSpecs(), Cell: 32, ByteBudget: budget})
}

func flush(h *Hub, tick int64, fn func()) TickReport {
	h.BeginTick(tick)
	if fn != nil {
		fn()
	}
	return h.FlushTick()
}

// TestHubSnapshotOnEnter: a client whose window covers a cell snapshots
// its population on the first flush; a client elsewhere receives nothing.
func TestHubSnapshotOnEnter(t *testing.T) {
	h := newTestHub(0)
	near := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 50, 0)
	far := h.AddClient(2, spatial.Vec2{X: 5000, Y: 5000}, 50, 0)
	flush(h, 1, func() {
		h.SpawnEntity(10, spatial.Vec2{X: 110, Y: 100}, []float64{100, 110, 0})
	})
	if near.Snapshots != 1 {
		t.Fatalf("near client snapshots = %d, want 1", near.Snapshots)
	}
	if far.Snapshots != 0 || far.Bytes != 0 {
		t.Fatalf("far client received traffic: snaps=%d bytes=%d", far.Snapshots, far.Bytes)
	}
}

// TestHubDeltaGating: unchanged fields cost nothing; an Exact change is
// one message; a within-epsilon Coarse change ships nothing now but
// becomes due at the staleness deadline.
func TestHubDeltaGating(t *testing.T) {
	h := newTestHub(0)
	c := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 50, 0)
	pos := spatial.Vec2{X: 110, Y: 100}
	flush(h, 1, func() { h.SpawnEntity(10, pos, []float64{100, 110, 0}) })
	base := c.Msgs

	// No-op update: nothing ships.
	flush(h, 2, func() { h.UpdateEntity(10, pos, []float64{100, 110, 0}) })
	if c.Msgs != base {
		t.Fatalf("no-op update shipped %d messages", c.Msgs-base)
	}

	// Exact change ships exactly one field update (odd tick keeps the
	// Period-2 Cosmetic gate closed even if anim were dirty).
	flush(h, 3, func() { h.UpdateEntity(10, pos, []float64{99, 110, 0}) })
	if got := c.Msgs - base; got != 1 {
		t.Fatalf("Exact change shipped %d messages, want 1", got)
	}
	base = c.Msgs

	// Coarse within epsilon: declined now...
	flush(h, 4, func() { h.UpdateEntity(10, pos, []float64{99, 110.5, 0}) })
	if c.Msgs != base {
		t.Fatalf("within-epsilon Coarse shipped %d messages", c.Msgs-base)
	}
	// ...but the due index surfaces it at sentTick + MaxAge with no
	// further writes (sentTick=1 from the spawn baseline, MaxAge=5 → 6).
	flush(h, 5, nil)
	if c.Msgs != base {
		t.Fatal("Coarse shipped before its staleness deadline")
	}
	flush(h, 6, nil)
	if got := c.Msgs - base; got != 1 {
		t.Fatalf("staleness deadline shipped %d messages, want 1", got)
	}
}

// TestHubTierDegradationAndRecovery: a throttled client's backlog
// crosses the degrade watermark and steps down; once the backlog
// drains, it steps back up. Exact traffic survives at every tier,
// Cosmetic does not.
func TestHubTierDegradationAndRecovery(t *testing.T) {
	h := NewHub(HubConfig{Specs: hubSpecs(), Cell: 32, ByteBudget: 1000, DegradeAt: 60, UpgradeAt: 20, MaxQueue: 100000})
	slow := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 50, 10) // 10 bytes/tick drain
	pos := spatial.Vec2{X: 110, Y: 100}
	flush(h, 1, func() {
		for id := ID(10); id < 20; id++ {
			h.SpawnEntity(id, pos, []float64{1, 1, 1})
		}
	})
	// Flood Exact changes until the backlog forces degradation.
	tick := int64(2)
	for ; tick < 40 && slow.CurrentTier() == TierExact; tick++ {
		v := float64(tick)
		flush(h, tick, func() {
			for id := ID(10); id < 20; id++ {
				h.UpdateEntity(id, pos, []float64{v, 1, 1})
			}
		})
	}
	if slow.CurrentTier() == TierExact {
		t.Fatal("backlogged client never degraded")
	}
	if h.DegradeTotal.Load() == 0 {
		t.Fatal("DegradeTotal not counted")
	}
	// Quiet ticks: the queue drains and the tier recovers.
	for i := 0; i < 2000 && slow.CurrentTier() != TierExact; i++ {
		flush(h, tick, nil)
		tick++
	}
	if slow.CurrentTier() != TierExact {
		t.Fatalf("client never recovered: tier=%v backlog=%d", slow.CurrentTier(), slow.QueuedBytes())
	}
	if h.UpgradeTotal.Load() == 0 {
		t.Fatal("UpgradeTotal not counted")
	}
}

// TestHubTierFiltersCosmetic: at TierCoarse a client stops receiving
// Cosmetic updates while a healthy client still does; Exact updates
// reach both.
func TestHubTierFiltersCosmetic(t *testing.T) {
	h := newTestHub(1000)
	fast := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 50, 0)
	slow := h.AddClient(2, spatial.Vec2{X: 100, Y: 100}, 50, 0)
	pos := spatial.Vec2{X: 110, Y: 100}
	flush(h, 1, func() { h.SpawnEntity(10, pos, []float64{1, 1, 1}) })
	fm, sm := fast.Msgs, slow.Msgs
	// Tick 4: even tick opens the Period-2 Cosmetic gate; anim changed.
	// The tier is re-pinned inside each flush because a drained queue
	// upgrades it back at flush end (recovery dynamics tested above).
	flush(h, 4, func() {
		slow.tier = TierCoarse
		h.UpdateEntity(10, pos, []float64{1, 1, 9})
	})
	if got := fast.Msgs - fm; got != 1 {
		t.Fatalf("healthy client got %d cosmetic messages, want 1", got)
	}
	if slow.Msgs != sm {
		t.Fatalf("degraded client got %d cosmetic messages, want 0", slow.Msgs-sm)
	}
	// Exact still reaches both.
	flush(h, 5, func() {
		slow.tier = TierCoarse
		h.UpdateEntity(10, pos, []float64{2, 1, 9})
	})
	if fast.Msgs-fm != 2 || slow.Msgs-sm != 1 {
		t.Fatalf("Exact update filtered: fast +%d slow +%d", fast.Msgs-fm, slow.Msgs-sm)
	}
}

// TestHubOverflowDrops: a backlog past MaxQueue sheds its oldest
// messages and counts them.
func TestHubOverflowDrops(t *testing.T) {
	h := NewHub(HubConfig{Specs: hubSpecs(), Cell: 32, ByteBudget: 1000, MaxQueue: 50})
	stuck := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 50, 1) // ~no drain
	pos := spatial.Vec2{X: 110, Y: 100}
	flush(h, 1, func() {
		for id := ID(10); id < 30; id++ {
			h.SpawnEntity(id, pos, []float64{1, 1, 1})
		}
	})
	if stuck.Drops == 0 {
		t.Fatal("overflowing queue dropped nothing")
	}
	if stuck.QueuedBytes() > 50 {
		t.Fatalf("backlog %d exceeds MaxQueue 50", stuck.QueuedBytes())
	}
}

// TestHubClientMoveCoverDiff: moving a client's focus snapshots the
// newly covered population and removes the departed one — and only the
// difference, not the whole window.
func TestHubClientMoveCoverDiff(t *testing.T) {
	h := newTestHub(0)
	c := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 40, 0)
	flush(h, 1, func() {
		h.SpawnEntity(10, spatial.Vec2{X: 100, Y: 100}, []float64{1, 1, 1}) // old window
		h.SpawnEntity(11, spatial.Vec2{X: 400, Y: 100}, []float64{1, 1, 1}) // new window
	})
	if c.Snapshots != 1 {
		t.Fatalf("initial snapshots = %d, want 1", c.Snapshots)
	}
	flush(h, 2, func() { h.MoveClient(c, spatial.Vec2{X: 400, Y: 100}) })
	if c.Snapshots != 2 {
		t.Fatalf("post-move snapshots = %d, want 2 (entity 11 entered)", c.Snapshots)
	}
	// The old entity's subsequent updates no longer reach the client.
	base := c.Msgs
	flush(h, 3, func() {
		h.UpdateEntity(10, spatial.Vec2{X: 100, Y: 100}, []float64{2, 1, 1})
	})
	if c.Msgs != base {
		t.Fatal("client still receives updates from the departed window")
	}
}

// TestHubEntityCellTransition: an entity crossing into a client's
// window snapshots; one crossing out removes; movement between two
// covered cells is just deltas (no re-snapshot).
func TestHubEntityCellTransition(t *testing.T) {
	h := newTestHub(0)
	c := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 40, 0)
	farPos := spatial.Vec2{X: 900, Y: 900}
	flush(h, 1, func() { h.SpawnEntity(10, farPos, []float64{1, 1, 1}) })
	if c.Snapshots != 0 {
		t.Fatal("snapshot for an entity outside the window")
	}
	// Entity walks into the window: snapshot.
	flush(h, 2, func() { h.UpdateEntity(10, spatial.Vec2{X: 110, Y: 100}, []float64{1, 1, 1}) })
	if c.Snapshots != 1 {
		t.Fatalf("enter snapshots = %d, want 1", c.Snapshots)
	}
	snaps := c.Snapshots
	// Moves within the window (cell 32: 110→80 crosses a cell edge but
	// both cells are covered): deltas only, no new snapshot.
	flush(h, 3, func() { h.UpdateEntity(10, spatial.Vec2{X: 80, Y: 100}, []float64{1, 1, 1}) })
	if c.Snapshots != snaps {
		t.Fatal("covered-to-covered cell move re-snapshotted")
	}
	// Entity leaves: removal message (bytes move, snapshots do not).
	bytes := c.Bytes
	flush(h, 4, func() { h.UpdateEntity(10, farPos, []float64{1, 1, 1}) })
	if c.Snapshots != snaps {
		t.Fatal("leave counted as a snapshot")
	}
	if c.Bytes == bytes {
		t.Fatal("leave shipped no removal")
	}
	// Despawn of an out-of-window entity ships nothing.
	bytes = c.Bytes
	flush(h, 5, func() { h.DespawnEntity(10) })
	if c.Bytes != bytes {
		t.Fatal("out-of-window despawn shipped traffic")
	}
}

// TestHubFlushDeterministicAcrossWorkers: per-tick totals are
// independent of the worker pool's chunking — rerunning the same call
// sequence against many clients must reproduce byte-identical totals.
func TestHubFlushDeterministicAcrossWorkers(t *testing.T) {
	run := func() (int64, int64, int64, int64) {
		h := newTestHub(40) // tight budget: queues carry across ticks
		for i := 0; i < 64; i++ {
			h.AddClient(i, spatial.Vec2{X: float64(i * 13 % 300), Y: float64(i * 29 % 300)}, 48, 0)
		}
		for tick := int64(1); tick <= 12; tick++ {
			h.BeginTick(tick)
			for id := ID(1); id <= 40; id++ {
				x := float64((int64(id)*17 + tick*31) % 300)
				y := float64((int64(id)*23 + tick*7) % 300)
				h.UpdateEntity(id, spatial.Vec2{X: x, Y: y}, []float64{float64(tick), x, y})
			}
			h.FlushTick()
		}
		return h.MsgsTotal.Load(), h.BytesTotal.Load(), h.SnapshotTotal.Load(), h.DropTotal.Load()
	}
	m1, b1, s1, d1 := run()
	m2, b2, s2, d2 := run()
	if m1 != m2 || b1 != b2 || s1 != s2 || d1 != d2 {
		t.Fatalf("totals not reproducible: (%d %d %d %d) vs (%d %d %d %d)",
			m1, b1, s1, d1, m2, b2, s2, d2)
	}
	if m1 == 0 || b1 == 0 {
		t.Fatal("scenario shipped nothing")
	}
}
