// Package replica implements client-state replication with the weakened
// consistency tiers the paper describes: games keep the persistent world
// exactly consistent while letting "animation or other uncontested
// activity ... be out of sync between computers". Each replicated field
// carries a consistency class:
//
//   - Exact: every change ships on the tick it happens (persistent
//     state — inventory, hp).
//   - Coarse: ships only when server and replica diverge beyond an
//     epsilon or a staleness deadline passes (positions).
//   - Cosmetic: ships on a fixed low-rate schedule, best effort
//     (animation phase, particle seeds).
//
// Interest management (area-of-interest filtering) rides on top: a client
// only receives entities near its focus point, which is how MMOs bound
// per-client bandwidth.
package replica

import (
	"fmt"
	"math"

	"gamedb/internal/spatial"
)

// Class is a field's consistency class.
type Class uint8

// The consistency tiers.
const (
	Exact Class = iota
	Coarse
	Cosmetic
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Exact:
		return "exact"
	case Coarse:
		return "coarse"
	case Cosmetic:
		return "cosmetic"
	default:
		return "?"
	}
}

// FieldSpec describes one replicated numeric field.
type FieldSpec struct {
	Name  string
	Class Class
	// Epsilon is the allowed divergence for Coarse fields.
	Epsilon float64
	// MaxAge forces a Coarse ship after this many ticks of unsent drift.
	MaxAge int64
	// Period is the ship schedule for Cosmetic fields (every Period
	// ticks). 0 behaves as 1.
	Period int64
}

// ShouldShip reports whether a changed value ships on tick under the
// field's consistency class, given the last-shipped value and its tick.
// Both client replication and shard ghost refresh decide through this
// one policy.
func (f FieldSpec) ShouldShip(cur, sent float64, tick, sentTick int64) bool {
	if cur == sent {
		return false
	}
	switch f.Class {
	case Exact:
		return true
	case Coarse:
		if math.Abs(cur-sent) > f.Epsilon {
			return true
		}
		return f.MaxAge > 0 && tick-sentTick >= f.MaxAge
	case Cosmetic:
		period := f.Period
		if period <= 0 {
			period = 1
		}
		return tick%period == 0
	default:
		return true
	}
}

// NextDue returns the future tick at which a diverged-but-declined
// value becomes due to ship with no further writes, and whether such a
// tick exists. It is the time-driven complement of ShouldShip that
// makes dirty-set-driven replication exact: if ShouldShip(cur, sent,
// tick, sentTick) returned false with cur != sent, then for every
// t' in (tick, due) ShouldShip stays false and at t' == due it turns
// true — so a consumer that re-evaluates dirty rows immediately and
// due rows at their due tick ships exactly what a full per-tick scan
// would.
//
//   - Exact fields ship on any divergence, so a declined Exact
//     evaluation means cur == sent: nothing pends.
//   - Coarse fields under epsilon become due when the staleness
//     deadline passes: sentTick + MaxAge (never, when MaxAge <= 0).
//   - Cosmetic fields become due at the next schedule tick: the first
//     multiple of Period after tick.
func (f FieldSpec) NextDue(tick, sentTick int64) (int64, bool) {
	switch f.Class {
	case Coarse:
		if f.MaxAge <= 0 {
			return 0, false
		}
		due := sentTick + f.MaxAge
		if due <= tick {
			// Already past the deadline: ShouldShip would have shipped,
			// so a declined evaluation can only land here when cur moved
			// back to sent. Nothing pends.
			return 0, false
		}
		return due, true
	case Cosmetic:
		period := f.Period
		if period <= 0 {
			period = 1
		}
		return (tick/period + 1) * period, true
	default:
		return 0, false
	}
}

// Route names the authoritative home of a replicated row: the shard
// that owns the entity a mirror reflects. Ghost-band replication
// attaches a Route to every mirror's bookkeeping so writes landing on
// the read-only copy can be forwarded to the owner instead of silently
// clobbered by the next re-ship — the routing half of turning replicas
// from caches into first-class write targets.
type Route struct {
	// Owner is the owning shard's index.
	Owner int
}

// ID identifies a replicated entity.
type ID = spatial.ID

// msgBytes is the modeled wire size of one field update
// (entity id + field index + float64 payload).
const msgBytes = 14

// snapshotBytesPer is the modeled wire size per field of an entity
// entering a client's interest set.
const snapshotBytesPer = 10

// Server is the authoritative state plus per-client replication tracking.
type Server struct {
	specs   []FieldSpec
	byName  map[string]int
	ents    map[ID][]float64
	pos     map[ID]spatial.Vec2
	grid    *spatial.Grid
	clients []*Client
	tick    int64
}

// NewServer builds a server replicating the given fields. aoiCell sizes
// the interest-management grid and should be on the order of client AOI
// radii.
func NewServer(specs []FieldSpec, aoiCell float64) (*Server, error) {
	s := &Server{
		specs:  specs,
		byName: make(map[string]int, len(specs)),
		ents:   make(map[ID][]float64),
		pos:    make(map[ID]spatial.Vec2),
		grid:   spatial.NewGrid(aoiCell),
	}
	for i, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("replica: field %d has no name", i)
		}
		if _, dup := s.byName[sp.Name]; dup {
			return nil, fmt.Errorf("replica: duplicate field %q", sp.Name)
		}
		s.byName[sp.Name] = i
	}
	return s, nil
}

// Tick returns the current tick counter.
func (s *Server) Tick() int64 { return s.tick }

// Spawn registers an entity at pos with zeroed fields.
func (s *Server) Spawn(id ID, pos spatial.Vec2) {
	s.ents[id] = make([]float64, len(s.specs))
	s.pos[id] = pos
	s.grid.Insert(id, pos)
}

// Despawn removes an entity.
func (s *Server) Despawn(id ID) {
	delete(s.ents, id)
	delete(s.pos, id)
	s.grid.Remove(id)
}

// MoveEntity updates the entity's spatial position used for interest
// management (separate from replicated fields so experiments can
// replicate x/y as Coarse fields too).
func (s *Server) MoveEntity(id ID, pos spatial.Vec2) {
	if _, ok := s.ents[id]; !ok {
		return
	}
	s.pos[id] = pos
	s.grid.Move(id, pos)
}

// Set writes one field of one entity.
func (s *Server) Set(id ID, field string, v float64) error {
	fi, ok := s.byName[field]
	if !ok {
		return fmt.Errorf("replica: unknown field %q", field)
	}
	vals, ok := s.ents[id]
	if !ok {
		return fmt.Errorf("replica: unknown entity %d", id)
	}
	vals[fi] = v
	return nil
}

// Get reads one field of one entity from the authoritative state.
func (s *Server) Get(id ID, field string) (float64, error) {
	fi, ok := s.byName[field]
	if !ok {
		return 0, fmt.Errorf("replica: unknown field %q", field)
	}
	vals, ok := s.ents[id]
	if !ok {
		return 0, fmt.Errorf("replica: unknown entity %d", id)
	}
	return vals[fi], nil
}

// Client is one connected replica with an area of interest.
type Client struct {
	Name      string
	Focus     spatial.Vec2
	AOIRadius float64

	state    map[ID][]float64
	lastSent map[ID][]float64
	sentTick map[ID][]int64

	// Msgs counts field updates shipped; Bytes models bandwidth;
	// Snapshots counts entities entering the AOI.
	Msgs      int64
	Bytes     int64
	Snapshots int64
}

// AddClient connects a client with the given focus and AOI radius.
func (s *Server) AddClient(name string, focus spatial.Vec2, aoiRadius float64) *Client {
	c := &Client{
		Name:      name,
		Focus:     focus,
		AOIRadius: aoiRadius,
		state:     make(map[ID][]float64),
		lastSent:  make(map[ID][]float64),
		sentTick:  make(map[ID][]int64),
	}
	s.clients = append(s.clients, c)
	return c
}

// Has reports whether the client currently replicates the entity.
func (c *Client) Has(id ID) bool {
	_, ok := c.state[id]
	return ok
}

// Value returns the client's replicated value of a field (by index).
func (c *Client) value(id ID, fi int) (float64, bool) {
	vals, ok := c.state[id]
	if !ok {
		return 0, false
	}
	return vals[fi], true
}

// FlushTick advances the tick and ships updates to every client
// according to field classes and interest sets.
func (s *Server) FlushTick() {
	s.tick++
	for _, c := range s.clients {
		s.flushClient(c)
	}
}

func (s *Server) flushClient(c *Client) {
	// Compute the interest set.
	interest := make(map[ID]bool)
	s.grid.QueryCircle(c.Focus, c.AOIRadius, func(id ID, _ spatial.Vec2) bool {
		interest[id] = true
		return true
	})
	// Drop entities that left the AOI.
	for id := range c.state {
		if !interest[id] {
			delete(c.state, id)
			delete(c.lastSent, id)
			delete(c.sentTick, id)
		}
	}
	for id := range interest {
		src := s.ents[id]
		if src == nil {
			continue
		}
		repl, known := c.state[id]
		if !known {
			// Entering AOI: full snapshot.
			repl = make([]float64, len(src))
			copy(repl, src)
			sent := make([]float64, len(src))
			copy(sent, src)
			ticks := make([]int64, len(src))
			for i := range ticks {
				ticks[i] = s.tick
			}
			c.state[id] = repl
			c.lastSent[id] = sent
			c.sentTick[id] = ticks
			c.Snapshots++
			c.Bytes += int64(len(src)) * snapshotBytesPer
			continue
		}
		sent := c.lastSent[id]
		ticks := c.sentTick[id]
		for fi, spec := range s.specs {
			cur := src[fi]
			if spec.ShouldShip(cur, sent[fi], s.tick, ticks[fi]) {
				repl[fi] = cur
				sent[fi] = cur
				ticks[fi] = s.tick
				c.Msgs++
				c.Bytes += msgBytes
			}
		}
	}
}

// Divergence reports the maximum absolute server-vs-client difference
// for one field across entities the client replicates.
func (s *Server) Divergence(c *Client, field string) (float64, error) {
	fi, ok := s.byName[field]
	if !ok {
		return 0, fmt.Errorf("replica: unknown field %q", field)
	}
	maxDiff := 0.0
	for id, vals := range s.ents {
		cv, has := c.value(id, fi)
		if !has {
			continue
		}
		if d := math.Abs(vals[fi] - cv); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff, nil
}

// CrossClientDivergence reports the maximum absolute difference of a
// field between two clients over entities both replicate — the paper's
// "players may have inconsistent, but very similar game states".
func (s *Server) CrossClientDivergence(a, b *Client, field string) (float64, error) {
	fi, ok := s.byName[field]
	if !ok {
		return 0, fmt.Errorf("replica: unknown field %q", field)
	}
	maxDiff := 0.0
	for id := range s.ents {
		av, okA := a.value(id, fi)
		bv, okB := b.value(id, fi)
		if !okA || !okB {
			continue
		}
		if d := math.Abs(av - bv); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff, nil
}
