package replica

import (
	"testing"

	"gamedb/internal/spatial"
	"gamedb/internal/wire"
)

// TestWireMsgRoundTrip pins every client-protocol message through the
// codec: encode, decode, compare fields.
func TestWireMsgRoundTrip(t *testing.T) {
	var e wire.Enc

	AppendUpdateMsg(&e, 300, 7, -2.5)
	d := wire.NewDec(e.Bytes(), nil)
	if got := DecodeUpdateMsg(d); got != (UpdateMsg{ID: 300, Field: 7, Val: -2.5}) {
		t.Fatalf("update round trip: %+v", got)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("update left err=%v remaining=%d", d.Err(), d.Remaining())
	}

	e.Reset()
	AppendRemoveMsg(&e, 1<<40)
	d.Reset(e.Bytes())
	if got := DecodeRemoveMsg(d); got != 1<<40 || d.Err() != nil {
		t.Fatalf("remove round trip: id=%d err=%v", got, d.Err())
	}

	e.Reset()
	vals := []float64{1, -2, 3.75, 0}
	AppendSnapshotMsg(&e, 42, vals)
	d.Reset(e.Bytes())
	id, got := DecodeSnapshotMsg(d, nil)
	if id != 42 || len(got) != len(vals) || d.Err() != nil {
		t.Fatalf("snapshot round trip: id=%d vals=%v err=%v", id, got, d.Err())
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("snapshot val %d: %v != %v", i, got[i], vals[i])
		}
	}
}

// TestWireMsgCorrupt: a wrong tag or a truncated payload must surface a
// decoder error, never a panic or a silently wrong value.
func TestWireMsgCorrupt(t *testing.T) {
	var e wire.Enc
	AppendUpdateMsg(&e, 5, 1, 9)

	// Wrong tag for each decoder.
	d := wire.NewDec(e.Bytes(), nil)
	DecodeRemoveMsg(d)
	if d.Err() == nil {
		t.Fatal("remove decoder accepted an update tag")
	}
	d.Reset(e.Bytes())
	DecodeSnapshotMsg(d, nil)
	if d.Err() == nil {
		t.Fatal("snapshot decoder accepted an update tag")
	}

	// Truncation at every prefix length must error, not panic.
	full := append([]byte(nil), e.Bytes()...)
	for cut := 0; cut < len(full); cut++ {
		d.Reset(full[:cut])
		DecodeUpdateMsg(d)
		if d.Err() == nil {
			t.Fatalf("truncated update at %d/%d decoded cleanly", cut, len(full))
		}
	}

	// Snapshot claiming more fields than bytes remain.
	e.Reset()
	e.U8(msgTagSnapshot)
	e.Uvarint(9)
	e.Uvarint(1 << 20) // field count far past the payload
	d.Reset(e.Bytes())
	DecodeSnapshotMsg(d, nil)
	if d.Err() == nil {
		t.Fatal("oversized snapshot count decoded cleanly")
	}
}

// TestHubWireSizing compares one scenario under modeled and wire-encoded
// sizing: the same messages ship (counts identical), but wire sizing
// prices them by real encoded length — different totals, reproducible
// across runs.
func TestHubWireSizing(t *testing.T) {
	run := func(wireSizing bool) (int64, int64, int64) {
		h := NewHub(HubConfig{Specs: hubSpecs(), Cell: 32, WireSizing: wireSizing})
		for i := 0; i < 8; i++ {
			h.AddClient(i, spatial.Vec2{X: float64(i * 37 % 200), Y: float64(i * 53 % 200)}, 48, 0)
		}
		for tick := int64(1); tick <= 8; tick++ {
			h.BeginTick(tick)
			for id := ID(1); id <= 20; id++ {
				x := float64((int64(id)*17 + tick*31) % 200)
				y := float64((int64(id)*23 + tick*7) % 200)
				h.UpdateEntity(id, spatial.Vec2{X: x, Y: y}, []float64{float64(tick), x, y})
			}
			h.FlushTick()
		}
		return h.MsgsTotal.Load(), h.BytesTotal.Load(), h.SnapshotTotal.Load()
	}
	mm, mb, ms := run(false)
	wm, wb, ws := run(true)
	if mm != wm || ms != ws {
		t.Fatalf("sizing mode changed message counts: modeled (%d msgs, %d snaps) vs wire (%d, %d)", mm, ms, wm, ws)
	}
	if wb == 0 || mb == 0 {
		t.Fatal("scenario shipped no bytes")
	}
	if wb == mb {
		t.Fatalf("wire sizing priced identically to the model (%d bytes) — sizing not applied", wb)
	}
	// Wire sizing must be reproducible run to run.
	if _, wb2, _ := run(true); wb2 != wb {
		t.Fatalf("wire-sized totals not reproducible: %d vs %d", wb, wb2)
	}
}

// TestHubWireSizingCoverDiff pins the flush-side sizing path: a window
// move prices its cover-diff snapshots and removals by encoding, so a
// bigger entity id (longer varint) costs more bytes than a small one.
func TestHubWireSizingCoverDiff(t *testing.T) {
	bytesAfterMove := func(id ID) int64 {
		h := NewHub(HubConfig{Specs: hubSpecs(), Cell: 32, WireSizing: true})
		c := h.AddClient(1, spatial.Vec2{X: 100, Y: 100}, 40, 0)
		h.BeginTick(1)
		h.SpawnEntity(id, spatial.Vec2{X: 400, Y: 100}, []float64{1, 1, 1})
		h.FlushTick()
		h.BeginTick(2)
		h.MoveClient(c, spatial.Vec2{X: 400, Y: 100})
		h.FlushTick()
		return c.Bytes
	}
	small, big := bytesAfterMove(3), bytesAfterMove(1<<40)
	if small == 0 {
		t.Fatal("cover-diff snapshot shipped nothing")
	}
	if big <= small {
		t.Fatalf("varint id did not grow the wire-sized snapshot: id=3 → %d bytes, id=2^40 → %d", small, big)
	}
}
