package replica

// The outward-facing half of change-feed replication: a Hub fans one
// authoritative world's per-tick deltas out to very many clients (the
// 100k-client regime the paper's MMO discussion targets) with the
// bandwidth levers games actually use:
//
//   - Interest management: clients subscribe to spatial cells covering
//     their area of interest; an update is evaluated once globally and
//     then reaches only the clients whose windows cover its cell.
//   - Delta encoding: per (entity, field) ShouldShip gating against the
//     last-shipped baseline, so unchanged or within-epsilon values cost
//     nothing; only cell entries ship full snapshots.
//   - Tier degradation: a client whose queue outgrows its drain budget
//     is stepped down Exact → Coarse → Cosmetic, shedding cosmetic and
//     thinning coarse traffic while persistent-state (Exact) updates
//     always ship — the paper's "uncontested activity may be out of
//     sync" tier, applied per client under backpressure.
//
// The hub is driven from a shard runtime's sealed change feeds (see
// shard.Config.ChangeFeed): the feed's dirty sets name exactly the
// (table, column, id) cells that could need shipping, so per-tick cost
// is O(dirty + due + clients-touched), never O(entities × clients).
//
// Concurrency contract: BeginTick / Spawn / Update / Despawn /
// MoveClient / AddClient run single-threaded between flushes; FlushTick
// fans per-client work across the worker pool, reading the shared
// per-cell lists immutably. Aggregate totals are deterministic for a
// deterministic call sequence: per-client streams are independent, and
// the only unordered work (snapshot batches from cell-set iteration)
// consists of indistinguishable messages (same bytes, same tick), so
// queue drains, drops and staleness samples cannot observe the order.

import (
	"sort"

	"gamedb/internal/metrics"
	"gamedb/internal/sched"
	"gamedb/internal/spatial"
	"gamedb/internal/wire"
)

// Tier is a client's current service level. TierExact receives every
// class; TierCoarse sheds Cosmetic updates; TierCosmetic additionally
// thins Coarse updates to every CoarseThinning-th tick. Exact-class
// updates ship at every tier: degraded clients lose smoothness, never
// persistent state.
type Tier uint8

// The service levels, best first.
const (
	TierExact Tier = iota
	TierCoarse
	TierCosmetic
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierCoarse:
		return "coarse"
	case TierCosmetic:
		return "cosmetic"
	default:
		return "?"
	}
}

// removeBytes is the modeled wire size of an entity-removal message.
const removeBytes = 6

// HubConfig sizes a Hub. Zero values get workable defaults.
type HubConfig struct {
	// Specs are the replicated fields, ShouldShip-gated per class.
	Specs []FieldSpec
	// Cell is the interest-cell edge length (default 64); client
	// windows and entity updates meet at cell granularity.
	Cell float64
	// ByteBudget is a client's default per-tick drain budget in modeled
	// bytes (default 1500, one MTU per tick).
	ByteBudget int
	// DegradeAt / UpgradeAt are the backlog watermarks (in bytes) that
	// step a client's tier down / back up (defaults 4 × ByteBudget and
	// 1 × ByteBudget).
	DegradeAt int
	UpgradeAt int
	// MaxQueue caps a client's backlog in bytes; beyond it the oldest
	// queued messages drop (default 32 × ByteBudget).
	MaxQueue int
	// CoarseThinning: at TierCosmetic, Coarse updates ship only every
	// this many ticks (default 4).
	CoarseThinning int64
	// StalenessSample records 1 in N delivered messages into the
	// staleness histogram (default 16).
	StalenessSample int
	// WireSizing prices every queued message by wire-encoding it with
	// the internal/wire codec (the shard barrier's frame codec) instead
	// of the fixed modeled constants: varint-length ids and real float
	// payloads, so byte budgets and tier watermarks respond to actual
	// encoded sizes. Totals are deterministic (sizes depend only on
	// message content); which specific messages drop past MaxQueue can
	// vary with cell-map iteration order, as in the modeled sizing.
	WireSizing bool
	// Pool runs the per-client flush fan-out (default sched.Shared()).
	Pool *sched.Pool
}

func (c *HubConfig) defaults() {
	if c.Cell <= 0 {
		c.Cell = 64
	}
	if c.ByteBudget <= 0 {
		c.ByteBudget = 1500
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32 * c.ByteBudget
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = 4 * c.ByteBudget
	}
	if c.UpgradeAt <= 0 {
		c.UpgradeAt = c.ByteBudget
	}
	if c.CoarseThinning <= 0 {
		c.CoarseThinning = 4
	}
	if c.StalenessSample <= 0 {
		c.StalenessSample = 16
	}
	if c.Pool == nil {
		c.Pool = sched.Shared()
	}
}

// entState is the hub's authoritative view of one replicated entity:
// current values, the globally last-shipped baseline (shared across
// clients — the hub evaluates each (entity, field) once per tick, not
// once per client), and its interest cell.
type entState struct {
	pos      spatial.Vec2
	cell     spatial.CellKey
	cur      []float64
	sent     []float64
	sentTick []int64
}

// update is one shipped field delta, fanned to the cell's subscribers.
// bytes is the wire-encoded size, computed once at creation (on the
// single-threaded intake path) when WireSizing is on; 0 means "use the
// modeled constant".
type update struct {
	id    ID
	fi    int32
	class Class
	bytes int32
}

type eventKind uint8

const (
	evSpawn eventKind = iota
	evDespawn
	evEnter // entity moved into this cell; other = the cell it left
	evLeave // entity moved out of this cell; other = the cell it entered
)

// event is one membership change in a cell's per-tick list. bytes as
// in update: creation-time wire-encoded size, 0 = modeled constant.
type event struct {
	kind  eventKind
	id    ID
	other spatial.CellKey
	bytes int32
}

// cellTick accumulates one cell's current-tick traffic.
type cellTick struct {
	events  []event
	updates []update
}

// qmsg is one queued outbound message: modeled size plus the tick whose
// state it carries (staleness = delivery tick − payload tick).
type qmsg struct {
	bytes int32
	tick  int64
}

// Conn is one connected client: a spatial subscription window, a tier,
// and a byte-budgeted FIFO. Fields are owned by the hub; read stats
// between flushes.
type Conn struct {
	ID    int
	Focus spatial.Vec2
	AOI   float64
	// Budget is this client's per-tick drain in bytes (0 = hub default).
	Budget int

	tier       Tier
	cover      []spatial.CellKey
	coverDirty bool
	scratch    []spatial.CellKey
	fresh      []spatial.CellKey

	queue     []qmsg
	qBytes    int
	sampleCtr int

	// Delivered message/byte/snapshot/drop tallies, cumulative.
	Msgs      int64
	Bytes     int64
	Snapshots int64
	Drops     int64
}

// CurrentTier returns the client's current service level.
func (c *Conn) CurrentTier() Tier { return c.tier }

// QueuedBytes returns the client's current backlog.
func (c *Conn) QueuedBytes() int { return c.qBytes }

// TickReport summarizes one FlushTick.
type TickReport struct {
	Tick      int64
	Msgs      int64
	Bytes     int64
	Snapshots int64
	Drops     int64
	// Tiers counts clients per service level after this flush.
	Tiers [3]int
}

// Hub fans authoritative per-tick deltas out to subscribed clients.
type Hub struct {
	cfg   HubConfig
	specs []FieldSpec
	tick  int64

	ents     map[ID]*entState
	cellEnts map[spatial.CellKey]map[ID]struct{}
	cells    map[spatial.CellKey]*cellTick
	dueAt    map[int64][]ID

	conns []*Conn

	// MsgsTotal / BytesTotal / SnapshotTotal / DropTotal accumulate
	// across the run; Staleness samples delivery delay in ticks;
	// DegradeTotal / UpgradeTotal count tier transitions.
	MsgsTotal     metrics.Counter
	BytesTotal    metrics.Counter
	SnapshotTotal metrics.Counter
	DropTotal     metrics.Counter
	DegradeTotal  metrics.Counter
	UpgradeTotal  metrics.Counter
	Staleness     metrics.Histogram

	// sizeEnc is the intake-path encoder scratch for WireSizing; flush
	// workers use their own (the intake is single-threaded, flush is
	// not).
	sizeEnc wire.Enc
}

// updateSize prices one field-update message at creation time.
func (h *Hub) updateSize(id ID, fi int32, val float64) int32 {
	if !h.cfg.WireSizing {
		return 0
	}
	h.sizeEnc.Reset()
	AppendUpdateMsg(&h.sizeEnc, id, fi, val)
	return int32(h.sizeEnc.Len())
}

// removeSize prices one removal message at creation time.
func (h *Hub) removeSize(id ID) int32 {
	return h.removeSizeInto(&h.sizeEnc, id)
}

// removeSizeInto is removeSize with the caller's encoder scratch, for
// the parallel flush workers.
func (h *Hub) removeSizeInto(e *wire.Enc, id ID) int32 {
	if !h.cfg.WireSizing {
		return 0
	}
	e.Reset()
	AppendRemoveMsg(e, id)
	return int32(e.Len())
}

// snapSizeInto prices one full-entity snapshot with the caller's
// encoder scratch (flush workers pass their own; the intake passes
// h.sizeEnc).
func (h *Hub) snapSizeInto(e *wire.Enc, id ID, vals []float64) int32 {
	if !h.cfg.WireSizing {
		return 0
	}
	e.Reset()
	AppendSnapshotMsg(e, id, vals)
	return int32(e.Len())
}

// NewHub builds a hub replicating cfg.Specs.
func NewHub(cfg HubConfig) *Hub {
	cfg.defaults()
	return &Hub{
		cfg:      cfg,
		specs:    cfg.Specs,
		ents:     make(map[ID]*entState),
		cellEnts: make(map[spatial.CellKey]map[ID]struct{}),
		cells:    make(map[spatial.CellKey]*cellTick),
		dueAt:    make(map[int64][]ID),
	}
}

// Specs returns the replicated field specs.
func (h *Hub) Specs() []FieldSpec { return h.specs }

// Clients returns the connected client count.
func (h *Hub) Clients() int { return len(h.conns) }

// Entities returns the replicated entity count.
func (h *Hub) Entities() int { return len(h.ents) }

// AddClient connects a client. Its whole window snapshots on the first
// flush (the cover diff sees every cell as newly entered).
func (h *Hub) AddClient(id int, focus spatial.Vec2, aoi float64, budget int) *Conn {
	c := &Conn{ID: id, Focus: focus, AOI: aoi, Budget: budget, coverDirty: true}
	h.conns = append(h.conns, c)
	return c
}

// MoveClient retargets a client's window; the cover diff at the next
// flush snapshots newly covered cells and drops departed ones.
func (h *Hub) MoveClient(c *Conn, focus spatial.Vec2) {
	c.Focus = focus
	c.coverDirty = true
}

// BeginTick opens a tick: per-cell lists reset and the due index for
// this tick re-evaluates (time-driven Coarse/Cosmetic ships surface
// here without any dirty mark, mirroring the shard reconcile's due
// index).
func (h *Hub) BeginTick(tick int64) {
	h.tick = tick
	for _, ct := range h.cells {
		ct.events = ct.events[:0]
		ct.updates = ct.updates[:0]
	}
	due := h.dueAt[tick]
	if len(due) == 0 {
		delete(h.dueAt, tick)
		return
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, id := range due {
		es, ok := h.ents[id]
		if !ok {
			continue
		}
		h.evalFields(id, es)
	}
	delete(h.dueAt, tick)
}

// SpawnEntity registers (or re-registers) an entity; subscribed clients
// snapshot it. vals must be len(Specs).
func (h *Hub) SpawnEntity(id ID, pos spatial.Vec2, vals []float64) {
	if _, ok := h.ents[id]; ok {
		h.UpdateEntity(id, pos, vals)
		return
	}
	es := &entState{
		pos:      pos,
		cell:     spatial.CellAt(pos, h.cfg.Cell),
		cur:      append([]float64(nil), vals...),
		sent:     append([]float64(nil), vals...),
		sentTick: make([]int64, len(vals)),
	}
	for i := range es.sentTick {
		es.sentTick[i] = h.tick
	}
	h.ents[id] = es
	h.cellAdd(es.cell, id)
	h.cellFor(es.cell).events = append(h.cellFor(es.cell).events,
		event{kind: evSpawn, id: id, bytes: h.snapSizeInto(&h.sizeEnc, id, es.cur)})
}

// DespawnEntity removes an entity; subscribed clients get a removal.
func (h *Hub) DespawnEntity(id ID) {
	es, ok := h.ents[id]
	if !ok {
		return
	}
	h.cellFor(es.cell).events = append(h.cellFor(es.cell).events,
		event{kind: evDespawn, id: id, bytes: h.removeSize(id)})
	h.cellDel(es.cell, id)
	delete(h.ents, id)
}

// UpdateEntity feeds one dirtied entity's current position and values:
// cell transitions become enter/leave events, and each field evaluates
// ShouldShip once against the global baseline (unknown ids spawn).
func (h *Hub) UpdateEntity(id ID, pos spatial.Vec2, vals []float64) {
	es, ok := h.ents[id]
	if !ok {
		h.SpawnEntity(id, pos, vals)
		return
	}
	newCell := spatial.CellAt(pos, h.cfg.Cell)
	if newCell != es.cell {
		h.cellFor(es.cell).events = append(h.cellFor(es.cell).events,
			event{kind: evLeave, id: id, other: newCell, bytes: h.removeSize(id)})
		h.cellFor(newCell).events = append(h.cellFor(newCell).events,
			event{kind: evEnter, id: id, other: es.cell, bytes: h.snapSizeInto(&h.sizeEnc, id, es.cur)})
		h.cellDel(es.cell, id)
		h.cellAdd(newCell, id)
		es.cell = newCell
	}
	es.pos = pos
	copy(es.cur, vals)
	h.evalFields(id, es)
}

// evalFields runs the delta gate for every field of one entity,
// emitting ships into the entity's cell and registering dues for
// declined-but-diverged values.
func (h *Hub) evalFields(id ID, es *entState) {
	ct := h.cellFor(es.cell)
	for fi, spec := range h.specs {
		cur := es.cur[fi]
		if spec.ShouldShip(cur, es.sent[fi], h.tick, es.sentTick[fi]) {
			es.sent[fi] = cur
			es.sentTick[fi] = h.tick
			ct.updates = append(ct.updates,
				update{id: id, fi: int32(fi), class: spec.Class, bytes: h.updateSize(id, int32(fi), cur)})
			continue
		}
		if cur != es.sent[fi] {
			if due, ok := spec.NextDue(h.tick, es.sentTick[fi]); ok {
				h.dueAt[due] = append(h.dueAt[due], id)
			}
		}
	}
}

func (h *Hub) cellFor(k spatial.CellKey) *cellTick {
	ct := h.cells[k]
	if ct == nil {
		ct = &cellTick{}
		h.cells[k] = ct
	}
	return ct
}

func (h *Hub) cellAdd(k spatial.CellKey, id ID) {
	s := h.cellEnts[k]
	if s == nil {
		s = make(map[ID]struct{})
		h.cellEnts[k] = s
	}
	s[id] = struct{}{}
}

func (h *Hub) cellDel(k spatial.CellKey, id ID) {
	if s := h.cellEnts[k]; s != nil {
		delete(s, id)
	}
}

// subscribed reports whether a client window covers cell k — the exact
// predicate CellCover uses, so membership tests agree with the cover.
func subscribed(focus spatial.Vec2, aoi, cell float64, k spatial.CellKey) bool {
	return k.Rect(cell).Dist2(focus) <= aoi*aoi
}

// FlushTick fans the tick's accumulated traffic to every client (over
// the worker pool), drains each queue by its byte budget, applies the
// tier watermarks, and reports totals.
func (h *Hub) FlushTick() TickReport {
	rep := TickReport{Tick: h.tick}
	n := len(h.conns)
	if n == 0 {
		return rep
	}
	pool := h.cfg.Pool
	workers := pool.Size() + 1
	if workers > n {
		workers = n
	}
	type tally struct {
		stats   flushStats
		tiers   [3]int
		samples []float64
	}
	tallies := make([]tally, workers)
	chunk := (n + workers - 1) / workers
	pool.Par(workers, func(wi int) {
		lo, hi := wi*chunk, (wi+1)*chunk
		if hi > n {
			hi = n
		}
		tl := &tallies[wi]
		var enc wire.Enc // per-worker sizing scratch; h.sizeEnc is intake-only
		for _, c := range h.conns[lo:hi] {
			fs := h.flushConn(c, &tl.samples, &enc)
			tl.stats.add(fs)
			tl.tiers[c.tier]++
		}
	})
	for wi := range tallies {
		tl := &tallies[wi]
		rep.Msgs += tl.stats.msgs
		rep.Bytes += tl.stats.bytes
		rep.Snapshots += tl.stats.snaps
		rep.Drops += tl.stats.drops
		for t := 0; t < 3; t++ {
			rep.Tiers[t] += tl.tiers[t]
		}
		h.DegradeTotal.Add(tl.stats.degrades)
		h.UpgradeTotal.Add(tl.stats.upgrades)
		for _, s := range tl.samples {
			h.Staleness.Record(s)
		}
	}
	h.MsgsTotal.Add(rep.Msgs)
	h.BytesTotal.Add(rep.Bytes)
	h.SnapshotTotal.Add(rep.Snapshots)
	h.DropTotal.Add(rep.Drops)
	return rep
}

// flushStats is one client's this-flush tally.
type flushStats struct {
	msgs, bytes, snaps, drops int64
	degrades, upgrades        int64
}

func (a *flushStats) add(b flushStats) {
	a.msgs += b.msgs
	a.bytes += b.bytes
	a.snaps += b.snaps
	a.drops += b.drops
	a.degrades += b.degrades
	a.upgrades += b.upgrades
}

// cellLess orders cell keys row-major, matching CellCover's generation
// order so cover diffs are a merge walk.
func cellLess(a, b spatial.CellKey) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// enqueue appends one modeled message to the client's FIFO, dropping
// oldest messages past the backlog cap.
func (h *Hub) enqueue(c *Conn, bytes int32, fs *flushStats) {
	c.queue = append(c.queue, qmsg{bytes: bytes, tick: h.tick})
	c.qBytes += int(bytes)
	for c.qBytes > h.cfg.MaxQueue && len(c.queue) > 0 {
		c.qBytes -= int(c.queue[0].bytes)
		c.queue = c.queue[1:]
		fs.drops++
	}
}

// flushConn runs one client's tick: window maintenance (cover diff →
// snapshots and removals), traffic collection from covered cells under
// the tier filter, then a budgeted FIFO drain and the tier watermarks.
func (h *Hub) flushConn(c *Conn, samples *[]float64, enc *wire.Enc) flushStats {
	var fs flushStats
	cell := h.cfg.Cell
	snapBytes := int32(len(h.specs) * snapshotBytesPer)
	// Cover-diff messages are sized here rather than at creation: the
	// window move invents them, no intake event carries their bytes.
	// Entities in cells left behind are still alive (still in h.ents) —
	// only this client's window moved, nothing despawned.
	snapSize := func(id ID) int32 {
		if b := h.snapSizeInto(enc, id, h.ents[id].cur); b != 0 {
			return b
		}
		return snapBytes
	}
	remSize := func(id ID) int32 {
		if b := h.removeSizeInto(enc, id); b != 0 {
			return b
		}
		return removeBytes
	}

	// fresh lists this flush's newly covered cells: their end-of-tick
	// population snapshots wholesale below, so their per-tick event and
	// update lists are already baked in and must not replay.
	var fresh []spatial.CellKey
	if c.coverDirty {
		newCover := spatial.CellCover(c.Focus, c.AOI, cell, c.scratch[:0])
		fresh = c.fresh[:0]
		// Merge-walk old vs new cover (both row-major): cells only in
		// the new cover snapshot their population, cells only in the
		// old one queue removals for theirs.
		i, j := 0, 0
		for i < len(c.cover) || j < len(newCover) {
			switch {
			case j == len(newCover) || (i < len(c.cover) && cellLess(c.cover[i], newCover[j])):
				for id := range h.cellEnts[c.cover[i]] {
					h.enqueue(c, remSize(id), &fs)
				}
				i++
			case i == len(c.cover) || cellLess(newCover[j], c.cover[i]):
				for id := range h.cellEnts[newCover[j]] {
					h.enqueue(c, snapSize(id), &fs)
					fs.snaps++
				}
				fresh = append(fresh, newCover[j])
				j++
			default:
				i++
				j++
			}
		}
		c.scratch = c.cover
		c.cover = newCover
		c.fresh = fresh
		c.coverDirty = false
	}

	fn := 0
	for _, k := range c.cover {
		if fn < len(fresh) && fresh[fn] == k {
			// Snapshot this flush: events would double-ship spawns and
			// entries the population snapshot already carries, and
			// updates are baked into the snapshot values.
			fn++
			continue
		}
		ct := h.cells[k]
		if ct == nil {
			continue
		}
		for _, ev := range ct.events {
			// An event sized at creation carries its bytes; zero means
			// modeled sizing was in force when it was queued.
			b := ev.bytes
			switch ev.kind {
			case evSpawn:
				if b == 0 {
					b = snapBytes
				}
				h.enqueue(c, b, &fs)
				fs.snaps++
			case evDespawn:
				if b == 0 {
					b = removeBytes
				}
				h.enqueue(c, b, &fs)
			case evEnter:
				// Came from a cell this window also covers: already
				// visible, the deltas carry it.
				if !subscribed(c.Focus, c.AOI, cell, ev.other) {
					if b == 0 {
						b = snapBytes
					}
					h.enqueue(c, b, &fs)
					fs.snaps++
				}
			case evLeave:
				if !subscribed(c.Focus, c.AOI, cell, ev.other) {
					if b == 0 {
						b = removeBytes
					}
					h.enqueue(c, b, &fs)
				}
			}
		}
		for _, u := range ct.updates {
			switch u.class {
			case Cosmetic:
				if c.tier != TierExact {
					continue
				}
			case Coarse:
				if c.tier == TierCosmetic && h.tick%h.cfg.CoarseThinning != 0 {
					continue
				}
			}
			if u.bytes != 0 {
				h.enqueue(c, u.bytes, &fs)
			} else {
				h.enqueue(c, msgBytes, &fs)
			}
		}
	}

	// Budgeted drain, oldest first; staleness samples the delivery
	// delay in ticks.
	budget := c.Budget
	if budget <= 0 {
		budget = h.cfg.ByteBudget
	}
	for len(c.queue) > 0 && budget > 0 {
		m := c.queue[0]
		c.queue = c.queue[1:]
		c.qBytes -= int(m.bytes)
		budget -= int(m.bytes)
		fs.msgs++
		fs.bytes += int64(m.bytes)
		c.sampleCtr++
		if c.sampleCtr%h.cfg.StalenessSample == 0 {
			*samples = append(*samples, float64(h.tick-m.tick))
		}
	}
	if len(c.queue) == 0 && cap(c.queue) > 1024 {
		c.queue = nil // reclaim a drained backlog's slid backing array
	}

	if c.qBytes > h.cfg.DegradeAt && c.tier < TierCosmetic {
		c.tier++
		fs.degrades++
	} else if c.qBytes < h.cfg.UpgradeAt && c.tier > TierExact {
		c.tier--
		fs.upgrades++
	}

	c.Msgs += fs.msgs
	c.Bytes += fs.bytes
	c.Snapshots += fs.snaps
	c.Drops += fs.drops
	return fs
}
