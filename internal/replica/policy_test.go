package replica

import "testing"

// TestShouldShipEdges pins the policy's boundary behavior — the cases
// the incremental reconcile's due index depends on being exact.
func TestShouldShipEdges(t *testing.T) {
	tests := []struct {
		name string
		spec FieldSpec
		cur  float64
		sent float64
		tick int64
		sentTick int64
		want bool
	}{
		// Unchanged never ships, whatever the class or age.
		{"exact unchanged", FieldSpec{Class: Exact}, 5, 5, 100, 0, false},
		{"coarse unchanged past deadline", FieldSpec{Class: Coarse, Epsilon: 1, MaxAge: 3}, 5, 5, 100, 0, false},
		{"cosmetic unchanged on schedule", FieldSpec{Class: Cosmetic, Period: 4}, 5, 5, 8, 0, false},
		// Exact ships on any divergence, immediately.
		{"exact tiny change", FieldSpec{Class: Exact}, 5.0000001, 5, 1, 0, true},
		// Coarse: divergence strictly beyond epsilon ships; exactly at
		// epsilon does not (|d| > eps is strict).
		{"coarse at epsilon", FieldSpec{Class: Coarse, Epsilon: 0.5}, 5.5, 5, 1, 0, false},
		{"coarse beyond epsilon", FieldSpec{Class: Coarse, Epsilon: 0.5}, 5.6, 5, 1, 0, true},
		// Coarse MaxAge: the deadline is inclusive — exactly MaxAge ticks
		// of unsent drift ships (tick - sentTick >= MaxAge)...
		{"coarse at deadline", FieldSpec{Class: Coarse, Epsilon: 10, MaxAge: 3}, 6, 5, 13, 10, true},
		// ...one tick earlier does not.
		{"coarse before deadline", FieldSpec{Class: Coarse, Epsilon: 10, MaxAge: 3}, 6, 5, 12, 10, false},
		// Coarse with MaxAge 0 never ships on time alone.
		{"coarse no deadline", FieldSpec{Class: Coarse, Epsilon: 10, MaxAge: 0}, 6, 5, 1000, 0, false},
		// Cosmetic ships on period ticks only; Period <= 0 behaves as 1
		// (every tick).
		{"cosmetic on schedule", FieldSpec{Class: Cosmetic, Period: 4}, 6, 5, 8, 0, true},
		{"cosmetic off schedule", FieldSpec{Class: Cosmetic, Period: 4}, 6, 5, 9, 0, false},
		{"cosmetic zero period", FieldSpec{Class: Cosmetic, Period: 0}, 6, 5, 9, 0, true},
		{"cosmetic negative period", FieldSpec{Class: Cosmetic, Period: -2}, 6, 5, 9, 0, true},
	}
	for _, tc := range tests {
		if got := tc.spec.ShouldShip(tc.cur, tc.sent, tc.tick, tc.sentTick); got != tc.want {
			t.Errorf("%s: ShouldShip = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestNextDueComplementsShouldShip pins the contract the incremental
// reconcile is built on: when ShouldShip declines a diverged value,
// NextDue names the exact first future tick at which ShouldShip (with
// no further writes) flips true — and reports none when it never will.
func TestNextDueComplementsShouldShip(t *testing.T) {
	// Coarse under epsilon: due exactly at sentTick + MaxAge.
	coarse := FieldSpec{Class: Coarse, Epsilon: 1, MaxAge: 5}
	due, ok := coarse.NextDue(12, 10)
	if !ok || due != 15 {
		t.Fatalf("coarse NextDue = (%d, %v), want (15, true)", due, ok)
	}
	// Walk the gap: ShouldShip stays false strictly before due, true at due.
	for tick := int64(13); tick < 15; tick++ {
		if coarse.ShouldShip(5.5, 5, tick, 10) {
			t.Fatalf("coarse shipped at tick %d, before its due tick 15", tick)
		}
	}
	if !coarse.ShouldShip(5.5, 5, 15, 10) {
		t.Fatal("coarse did not ship at its due tick")
	}

	// Coarse without a deadline: nothing pends.
	if _, ok := (FieldSpec{Class: Coarse, Epsilon: 1}).NextDue(12, 10); ok {
		t.Fatal("MaxAge=0 Coarse registered a due tick")
	}
	// A due tick in the past cannot pend (ShouldShip would have shipped).
	if _, ok := coarse.NextDue(20, 10); ok {
		t.Fatal("past-deadline Coarse registered a due tick")
	}

	// Cosmetic: due at the next period multiple strictly after tick.
	cos := FieldSpec{Class: Cosmetic, Period: 4}
	for _, tc := range []struct{ tick, want int64 }{{9, 12}, {11, 12}, {12, 16}} {
		due, ok := cos.NextDue(tc.tick, 0)
		if !ok || due != tc.want {
			t.Fatalf("cosmetic NextDue(%d) = (%d, %v), want (%d, true)", tc.tick, due, ok, tc.want)
		}
		if !cos.ShouldShip(6, 5, due, 0) {
			t.Fatalf("cosmetic did not ship at its due tick %d", due)
		}
	}
	// Period <= 0 behaves as 1: due next tick.
	due, ok = (FieldSpec{Class: Cosmetic}).NextDue(9, 0)
	if !ok || due != 10 {
		t.Fatalf("zero-period cosmetic NextDue = (%d, %v), want (10, true)", due, ok)
	}

	// Exact never pends: a declined Exact evaluation means cur == sent.
	if _, ok := (FieldSpec{Class: Exact}).NextDue(12, 10); ok {
		t.Fatal("Exact registered a due tick")
	}
}
