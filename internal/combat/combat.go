// Package combat implements "aggro management", the paper's example of a
// weak-consistency technique: World of Warcraft "assigns abstract roles
// to the participants, which allows the game to handle combat without
// exact spatial fidelity". An NPC tracks threat per attacker and switches
// targets only when a challenger's threat exceeds the current target's by
// a hysteresis factor, so slightly divergent client views still agree on
// who the boss attacks. The package also provides the exact-spatial
// baseline (attack the nearest enemy) that the aggro experiment compares
// against.
package combat

import (
	"sort"

	"gamedb/internal/spatial"
)

// ID identifies a combatant.
type ID = spatial.ID

// Hysteresis factors from WoW's combat rules: a melee attacker must
// exceed 110% of the current target's threat to pull aggro, a ranged
// attacker 130%.
const (
	MeleeSwitchFactor  = 1.10
	RangedSwitchFactor = 1.30
)

// ThreatTable is one NPC's per-attacker threat state.
type ThreatTable struct {
	threat  map[ID]float64
	current ID
	hasCur  bool
	// Switches counts target changes, the stability metric of E6.
	Switches int64
}

// NewThreatTable returns an empty threat table.
func NewThreatTable() *ThreatTable {
	return &ThreatTable{threat: make(map[ID]float64)}
}

// AddThreat accrues threat for an attacker (damage done, healing done
// scaled, etc.). Negative amounts reduce threat toward zero.
func (t *ThreatTable) AddThreat(src ID, amount float64) {
	v := t.threat[src] + amount
	if v < 0 {
		v = 0
	}
	t.threat[src] = v
}

// Taunt forces the taunter to the top of the table and makes it the
// current target immediately — the standard tank-swap mechanic. Its
// threat becomes 110% of the previous maximum so the old leader must
// out-threat it again to pull back.
func (t *ThreatTable) Taunt(src ID) {
	maxT := 0.0
	for _, v := range t.threat {
		if v > maxT {
			maxT = v
		}
	}
	t.threat[src] = maxT * 1.10
	if maxT == 0 {
		t.threat[src] = 1
	}
	if !t.hasCur || t.current != src {
		t.current = src
		t.hasCur = true
		t.Switches++
	}
}

// Remove drops an attacker (death, despawn).
func (t *ThreatTable) Remove(src ID) {
	delete(t.threat, src)
	if t.hasCur && t.current == src {
		t.hasCur = false
	}
}

// Threat returns an attacker's current threat.
func (t *ThreatTable) Threat(src ID) float64 { return t.threat[src] }

// Len returns the number of attackers on the table.
func (t *ThreatTable) Len() int { return len(t.threat) }

// Target applies the switch rule and returns the current target.
// switchFactor is the hysteresis multiplier (MeleeSwitchFactor or
// RangedSwitchFactor). ok is false when the table is empty.
func (t *ThreatTable) Target(switchFactor float64) (ID, bool) {
	if len(t.threat) == 0 {
		t.hasCur = false
		return 0, false
	}
	// Find the top contender deterministically (threat desc, ID asc).
	top := ID(0)
	topThreat := -1.0
	ids := make([]ID, 0, len(t.threat))
	for id := range t.threat {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if v := t.threat[id]; v > topThreat {
			top = id
			topThreat = v
		}
	}
	if !t.hasCur {
		t.current = top
		t.hasCur = true
		t.Switches++
		return t.current, true
	}
	if _, alive := t.threat[t.current]; !alive {
		t.current = top
		t.Switches++
		return t.current, true
	}
	if top != t.current && topThreat > t.threat[t.current]*switchFactor {
		t.current = top
		t.Switches++
	}
	return t.current, true
}

// Current returns the current target without applying the switch rule.
func (t *ThreatTable) Current() (ID, bool) { return t.current, t.hasCur }

// NearestPolicy is the exact-spatial baseline: always target the closest
// enemy. It carries its own switch counter for symmetric measurement.
type NearestPolicy struct {
	current  ID
	hasCur   bool
	Switches int64
}

// Target returns the nearest candidate to pos, counting target changes.
// ok is false with no candidates.
func (n *NearestPolicy) Target(pos spatial.Vec2, candidates []spatial.Point) (ID, bool) {
	if len(candidates) == 0 {
		n.hasCur = false
		return 0, false
	}
	best := candidates[0]
	bestD := best.Pos.Dist2(pos)
	for _, c := range candidates[1:] {
		d := c.Pos.Dist2(pos)
		if d < bestD || (d == bestD && c.ID < best.ID) {
			best = c
			bestD = d
		}
	}
	if !n.hasCur || n.current != best.ID {
		n.current = best.ID
		n.hasCur = true
		n.Switches++
	}
	return n.current, true
}
