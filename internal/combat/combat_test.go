package combat

import (
	"math/rand"
	"testing"

	"gamedb/internal/spatial"
)

func TestThreatAccrualAndTarget(t *testing.T) {
	tt := NewThreatTable()
	if _, ok := tt.Target(MeleeSwitchFactor); ok {
		t.Fatal("empty table should have no target")
	}
	tt.AddThreat(1, 100)
	tt.AddThreat(2, 50)
	tgt, ok := tt.Target(MeleeSwitchFactor)
	if !ok || tgt != 1 {
		t.Fatalf("target = %v, %v", tgt, ok)
	}
	if tt.Switches != 1 {
		t.Fatalf("switches = %d", tt.Switches)
	}
	if tt.Len() != 2 || tt.Threat(1) != 100 {
		t.Fatal("table state wrong")
	}
}

func TestSwitchHysteresis(t *testing.T) {
	tt := NewThreatTable()
	tt.AddThreat(1, 100)
	tt.Target(MeleeSwitchFactor) // target 1
	// 2 creeps past 1 but below 110%: no switch.
	tt.AddThreat(2, 105)
	tgt, _ := tt.Target(MeleeSwitchFactor)
	if tgt != 1 {
		t.Fatalf("switched too eagerly to %d", tgt)
	}
	// 2 crosses 110%: switch.
	tt.AddThreat(2, 10) // 115 > 110
	tgt, _ = tt.Target(MeleeSwitchFactor)
	if tgt != 2 {
		t.Fatalf("should switch to 2, got %d", tgt)
	}
	if tt.Switches != 2 {
		t.Fatalf("switches = %d, want 2", tt.Switches)
	}
	// Ranged factor is stricter.
	tt2 := NewThreatTable()
	tt2.AddThreat(1, 100)
	tt2.Target(RangedSwitchFactor)
	tt2.AddThreat(2, 120)
	if tgt, _ := tt2.Target(RangedSwitchFactor); tgt != 1 {
		t.Fatalf("ranged switched at 120%%, got %d", tgt)
	}
	tt2.AddThreat(2, 15) // 135 > 130
	if tgt, _ := tt2.Target(RangedSwitchFactor); tgt != 2 {
		t.Fatal("ranged should switch above 130%")
	}
}

func TestTaunt(t *testing.T) {
	tt := NewThreatTable()
	tt.AddThreat(1, 1000)
	tt.Target(MeleeSwitchFactor)
	tt.Taunt(2)
	if tt.Threat(2) <= 1000 {
		t.Fatalf("taunt threat = %v", tt.Threat(2))
	}
	if tgt, _ := tt.Target(MeleeSwitchFactor); tgt != 2 {
		t.Fatalf("taunt should pull aggro, target = %d", tgt)
	}
	// Taunt on an empty table still creates presence.
	tt2 := NewThreatTable()
	tt2.Taunt(5)
	if tgt, ok := tt2.Target(MeleeSwitchFactor); !ok || tgt != 5 {
		t.Fatal("taunt on empty table failed")
	}
}

func TestRemoveAndRetarget(t *testing.T) {
	tt := NewThreatTable()
	tt.AddThreat(1, 100)
	tt.AddThreat(2, 50)
	tt.Target(MeleeSwitchFactor)
	tt.Remove(1)
	tgt, ok := tt.Target(MeleeSwitchFactor)
	if !ok || tgt != 2 {
		t.Fatalf("retarget after death = %v, %v", tgt, ok)
	}
	tt.Remove(2)
	if _, ok := tt.Target(MeleeSwitchFactor); ok {
		t.Fatal("no targets left")
	}
}

func TestNegativeThreatClamps(t *testing.T) {
	tt := NewThreatTable()
	tt.AddThreat(1, 10)
	tt.AddThreat(1, -50)
	if tt.Threat(1) != 0 {
		t.Fatalf("threat = %v, want clamp at 0", tt.Threat(1))
	}
}

func TestNearestPolicy(t *testing.T) {
	var np NearestPolicy
	if _, ok := np.Target(spatial.Vec2{}, nil); ok {
		t.Fatal("no candidates should report !ok")
	}
	cands := []spatial.Point{
		{ID: 1, Pos: spatial.Vec2{X: 10, Y: 0}},
		{ID: 2, Pos: spatial.Vec2{X: 5, Y: 0}},
	}
	tgt, ok := np.Target(spatial.Vec2{}, cands)
	if !ok || tgt != 2 {
		t.Fatalf("nearest = %d", tgt)
	}
	// Same nearest: no new switch.
	np.Target(spatial.Vec2{}, cands)
	if np.Switches != 1 {
		t.Fatalf("switches = %d", np.Switches)
	}
	// Move 1 closer: switch.
	cands[0].Pos = spatial.Vec2{X: 1, Y: 0}
	tgt, _ = np.Target(spatial.Vec2{}, cands)
	if tgt != 1 || np.Switches != 2 {
		t.Fatalf("tgt=%d switches=%d", tgt, np.Switches)
	}
}

// TestAggroStableUnderJitter is the paper's claim in miniature: with
// positions jittering every tick (as replicated views do), nearest-enemy
// targeting flaps while threat-based targeting holds steady.
func TestAggroStableUnderJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	tt := NewThreatTable()
	var np NearestPolicy
	// Two attackers at nearly equal distance, tank has big threat lead.
	tt.AddThreat(1, 1000)
	tt.AddThreat(2, 400)
	basePos := []spatial.Point{
		{ID: 1, Pos: spatial.Vec2{X: 5, Y: 0}},
		{ID: 2, Pos: spatial.Vec2{X: 5.05, Y: 0}},
	}
	for tick := 0; tick < 500; tick++ {
		cands := make([]spatial.Point, len(basePos))
		for i, p := range basePos {
			cands[i] = spatial.Point{ID: p.ID, Pos: spatial.Vec2{
				X: p.Pos.X + rng.NormFloat64()*0.2,
				Y: p.Pos.Y + rng.NormFloat64()*0.2,
			}}
		}
		np.Target(spatial.Vec2{}, cands)
		tt.AddThreat(1, 10) // tank keeps generating threat
		tt.AddThreat(2, 9)
		tt.Target(MeleeSwitchFactor)
	}
	if tt.Switches != 1 {
		t.Fatalf("threat targeting switched %d times, want 1", tt.Switches)
	}
	if np.Switches < 50 {
		t.Fatalf("nearest targeting switched only %d times; jitter should cause flapping", np.Switches)
	}
}
