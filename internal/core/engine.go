// Package core assembles the paper's full stack into one engine: a
// tick-based world (entity tables + spatial index + scripts + triggers)
// with optional checkpoint persistence and optional client replication.
// It is the implementation behind the public gamedb package.
package core

import (
	"fmt"
	"io"

	"gamedb/internal/content"
	"gamedb/internal/entity"
	"gamedb/internal/obs"
	"gamedb/internal/persist"
	"gamedb/internal/replica"
	"gamedb/internal/sched"
	"gamedb/internal/spatial"
	"gamedb/internal/world"
)

// Options configures an Engine. The zero value is usable: a world with
// default sizes, no persistence, no replication.
type Options struct {
	// Seed drives all engine randomness.
	Seed int64
	// CellSize is the spatial index cell size.
	CellSize float64
	// ScriptFuel bounds one behavior invocation's interpretation work
	// (per entity per tick; see world.Config.ScriptFuel).
	ScriptFuel int64
	// TickDT is simulated seconds per tick.
	TickDT float64
	// Workers fans the tick's query phase (behaviors + physics) and its
	// trigger rounds across that many goroutines (default 1); world
	// state is identical for any value.
	Workers int
	// DirectTriggers selects the legacy single-threaded direct-write
	// trigger drain instead of the effect-aware round drain (see
	// world.Config.DirectTriggers).
	DirectTriggers bool
	// RowApply selects the legacy row-at-a-time effect apply instead of
	// the columnar batch apply (see world.Config.RowApply; both produce
	// bit-identical state).
	RowApply bool
	// Pool overrides the worker pool tick-parallel phases run on
	// (default: the process-wide sched.Shared() pool).
	Pool *sched.Pool
	// ConflictPolicy selects how conflicting assignments resolve in the
	// apply phase: world.ConflictLastWrite (default) or world.ConflictOCC
	// (serializable re-runs via read-set validation; see world.Config).
	ConflictPolicy string
	// EffectRetryCap bounds OCC re-run rounds (see world.Config).
	EffectRetryCap int
	// CompileBehaviors selects set-at-a-time compiled behavior execution:
	// world.CompileOn compiles behavior scripts onto query plans at load
	// (per-entity interpreter fallback for non-compilable bodies); "" or
	// world.CompileOff interprets everything. Bit-identical either way.
	CompileBehaviors string
	// Tracer records span-based tick traces (nil = off); the engine's
	// world records onto the tracer's shard-0 context. Profile is the
	// per-behavior / per-rule profiler (nil = off). Both are inert with
	// respect to world state (see world.Config.Trace / Profile).
	Tracer  *obs.Tracer
	Profile *obs.Profiler

	// Checkpoint enables snapshot persistence with the given policy
	// (persist.Periodic or persist.EventKeyed). Nil disables it.
	Checkpoint persist.Policy

	// ReplicaFields enables client replication of the named float
	// columns with per-field consistency classes. Empty disables it.
	ReplicaFields []replica.FieldSpec
	// ReplicaTable is the spatial table whose entities replicate
	// (default "units").
	ReplicaTable string
	// AOICell sizes the interest-management grid (default 4×CellSize).
	AOICell float64
}

// Engine is a running game shard with persistence and replication
// attached.
type Engine struct {
	World   *world.World
	Backing *persist.Backing
	Replica *replica.Server

	policy     persist.Policy
	ckptTick   int64
	replTable  string
	replFields []replica.FieldSpec
	replKnown  map[entity.ID]bool

	// Checkpoints counts snapshots taken; LostOnLastCrash reports the
	// actions... (ticks) rolled back by the most recent CrashAndRecover.
	Checkpoints     int64
	LostOnLastCrash int64
}

// New builds an engine.
func New(opts Options) (*Engine, error) {
	e := &Engine{
		World: world.New(world.Config{
			Seed:           opts.Seed,
			CellSize:       opts.CellSize,
			ScriptFuel:     opts.ScriptFuel,
			TickDT:         opts.TickDT,
			Workers:        opts.Workers,
			DirectTriggers: opts.DirectTriggers,
			RowApply:       opts.RowApply,
			Pool:           opts.Pool,
			ConflictPolicy: opts.ConflictPolicy,
			EffectRetryCap: opts.EffectRetryCap,
			Trace:          opts.Tracer.Context(0),
			Profile:        opts.Profile,

			CompileBehaviors: opts.CompileBehaviors,
		}),
	}
	if opts.Checkpoint != nil {
		e.policy = opts.Checkpoint
		e.Backing = &persist.Backing{}
	}
	if len(opts.ReplicaFields) > 0 {
		cell := opts.AOICell
		if cell <= 0 {
			if opts.CellSize > 0 {
				cell = 4 * opts.CellSize
			} else {
				cell = 64
			}
		}
		srv, err := replica.NewServer(opts.ReplicaFields, cell)
		if err != nil {
			return nil, err
		}
		e.Replica = srv
		e.replFields = opts.ReplicaFields
		e.replTable = opts.ReplicaTable
		if e.replTable == "" {
			e.replTable = "units"
		}
		e.replKnown = make(map[entity.ID]bool)
	}
	return e, nil
}

// LoadPackXML loads a content pack from XML. Compile errors are joined
// into one error listing every problem.
func (e *Engine) LoadPackXML(r io.Reader) error {
	c, errs := content.LoadAndCompile(r)
	if len(errs) > 0 {
		msg := "core: content pack rejected:"
		for _, err := range errs {
			msg += "\n  " + err.Error()
		}
		return fmt.Errorf("%s", msg)
	}
	return e.World.LoadPack(c)
}

// Tick advances the world one step, synchronizes replicas, and applies
// the checkpoint policy (a tick is an unimportant "action"; call
// NoteImportant for boss kills and loot).
func (e *Engine) Tick() (world.TickStats, error) {
	st, err := e.World.Step()
	if err != nil {
		return st, err
	}
	if e.Replica != nil {
		e.syncReplica()
		e.Replica.FlushTick()
	}
	if e.policy != nil {
		if e.policy.ShouldCheckpoint(persist.Action{Tick: st.Tick}, st.Tick-e.ckptTick) {
			if err := e.Checkpoint(); err != nil {
				return st, err
			}
		}
	}
	return st, nil
}

// NoteImportant reports an important event (boss kill, rare loot) to the
// checkpoint policy; under persist.EventKeyed this snapshots immediately.
func (e *Engine) NoteImportant() error {
	if e.policy == nil {
		return nil
	}
	tick := e.World.Tick()
	if e.policy.ShouldCheckpoint(persist.Action{Tick: tick, Important: true}, tick-e.ckptTick) {
		return e.Checkpoint()
	}
	return nil
}

// Checkpoint snapshots the world into the backing store now.
func (e *Engine) Checkpoint() error {
	if e.Backing == nil {
		return fmt.Errorf("core: persistence not configured")
	}
	snap, err := e.World.Snapshot()
	if err != nil {
		return err
	}
	tick := e.World.Tick()
	e.Backing.WriteSnapshot(snap, uint64(tick), tick)
	e.ckptTick = tick
	e.Checkpoints++
	return nil
}

// CrashAndRecover simulates a server crash and restores the last
// checkpoint, reporting how many ticks of play were rolled back.
func (e *Engine) CrashAndRecover() (int64, error) {
	if e.Backing == nil {
		return 0, fmt.Errorf("core: persistence not configured")
	}
	crashTick := e.World.Tick()
	snap, _, tick, ok := e.Backing.LatestSnapshot()
	if !ok {
		return 0, persist.ErrNoState
	}
	if err := e.World.Restore(snap); err != nil {
		return 0, err
	}
	if e.replKnown != nil {
		e.replKnown = make(map[entity.ID]bool)
	}
	e.ckptTick = tick
	e.LostOnLastCrash = crashTick - tick
	return e.LostOnLastCrash, nil
}

// syncReplica pushes configured columns of the replica table into the
// replication server.
func (e *Engine) syncReplica() {
	tab, ok := e.World.Table(e.replTable)
	if !ok {
		return
	}
	s := tab.Schema()
	type fieldCol struct {
		name string
		idx  int
	}
	var cols []fieldCol
	for _, f := range e.replFields {
		if ci, has := s.Col(f.Name); has {
			cols = append(cols, fieldCol{f.Name, ci})
		}
	}
	seen := make(map[entity.ID]bool, tab.Len())
	tab.Scan(func(id entity.ID, row []entity.Value) bool {
		seen[id] = true
		pos, hasPos := e.World.Pos(id)
		if !e.replKnown[id] {
			e.Replica.Spawn(replica.ID(id), pos)
			e.replKnown[id] = true
		} else if hasPos {
			e.Replica.MoveEntity(replica.ID(id), pos)
		}
		for _, fc := range cols {
			if f, okF := row[fc.idx].AsFloat(); okF {
				e.Replica.Set(replica.ID(id), fc.name, f)
			}
		}
		return true
	})
	for id := range e.replKnown {
		if !seen[id] {
			e.Replica.Despawn(replica.ID(id))
			delete(e.replKnown, id)
		}
	}
}

// Spawn proxies world.Spawn for API convenience.
func (e *Engine) Spawn(archetype string, pos spatial.Vec2) (entity.ID, error) {
	return e.World.Spawn(archetype, pos)
}
