package core

import (
	"strings"
	"testing"

	"gamedb/internal/spatial"
)

const shardedPackXML = `
<contentpack name="drift">
  <schema table="units">
    <column name="hp" kind="int" default="100"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="vx" kind="float" default="12.5"/>
    <column name="vy" kind="float"/>
  </schema>
  <archetype name="npc" table="units"/>
  <spawn archetype="npc" count="40" x="500" y="500" spread="450"/>
</contentpack>`

func newSharded(t *testing.T, shards int) *ShardedEngine {
	t.Helper()
	e, err := NewSharded(ShardedOptions{
		Seed:      9,
		Shards:    shards,
		World:     spatial.NewRect(0, 0, 1000, 1000),
		TickDT:    1,
		GhostBand: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	if err := e.LoadPackXML(strings.NewReader(shardedPackXML)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestShardedEngineLifecycle(t *testing.T) {
	e := newSharded(t, 4)
	if got := e.Entities(); got != 40 {
		t.Fatalf("entities = %d, want 40", got)
	}
	// The pack's spawns land on the shard owning each position, not on
	// every shard.
	perShard := 0
	for i := 0; i < e.Runtime.Shards(); i++ {
		perShard += e.ShardWorld(i).LocalEntities()
	}
	if perShard != 40 {
		t.Fatalf("sum of shard-local entities = %d, want 40", perShard)
	}
	st, err := e.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 1 || st.Entities != 40 {
		t.Fatalf("step stats = %+v", st)
	}
}

func TestShardedEngineHashMatchesSingleShard(t *testing.T) {
	// The same pack + seed must produce identical state digests on 1
	// and 4 shards after entities drift across boundaries (vx default
	// 12.5 pushes everyone rightward through the vertical splits).
	e1, e4 := newSharded(t, 1), newSharded(t, 4)
	for i := 0; i < 30; i++ {
		if _, err := e1.Tick(); err != nil {
			t.Fatal(err)
		}
		if _, err := e4.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if e1.Hash() != e4.Hash() {
		t.Fatalf("hash diverged: 1 shard %x, 4 shards %x", e1.Hash(), e4.Hash())
	}
	if e4.Runtime.HandoffTotal.Load() == 0 {
		t.Fatal("scenario produced no handoffs")
	}
	if e1.Entities() != e4.Entities() {
		t.Fatalf("entity totals diverged: %d vs %d", e1.Entities(), e4.Entities())
	}
}

func TestShardedEngineHashInvariantUnderWorkers(t *testing.T) {
	// Seed reproducibility must hold on the full (shards × workers)
	// grid, not just across shard counts.
	mk := func(shards, workers int) *ShardedEngine {
		e, err := NewSharded(ShardedOptions{
			Seed:      9,
			Shards:    shards,
			Workers:   workers,
			World:     spatial.NewRect(0, 0, 1000, 1000),
			TickDT:    1,
			GhostBand: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		if err := e.LoadPackXML(strings.NewReader(shardedPackXML)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			if _, err := e.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	base := mk(1, 1).Hash()
	if got := mk(4, 4).Hash(); got != base {
		t.Fatalf("hash diverged: 1 shard/1 worker %x, 4 shards/4 workers %x", base, got)
	}
}

func TestShardedRejectsBadOptions(t *testing.T) {
	if _, err := NewSharded(ShardedOptions{Shards: 2}); err == nil {
		t.Fatal("zero-area world should be rejected")
	}
	e, err := NewSharded(ShardedOptions{
		Shards: 0, World: spatial.NewRect(0, 0, 10, 10),
	})
	if err != nil {
		t.Fatalf("0 shards should default to 1, got %v", err)
	}
	if e.Runtime.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", e.Runtime.Shards())
	}
	e.Close()
}
