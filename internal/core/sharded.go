package core

import (
	"fmt"
	"io"

	"gamedb/internal/content"
	"gamedb/internal/entity"
	"gamedb/internal/obs"
	"gamedb/internal/replica"
	"gamedb/internal/sched"
	"gamedb/internal/shard"
	"gamedb/internal/spatial"
	"gamedb/internal/world"
)

// ShardedOptions configures OpenSharded. World and Shards are required;
// everything else defaults like Options.
type ShardedOptions struct {
	// Seed drives all randomness, reproducibly across shard counts.
	Seed int64
	// Shards is the number of region shards.
	Shards int
	// World is the map rectangle partitioned across shards.
	World spatial.Rect

	// CellSize, ScriptFuel and TickDT configure each shard's world.
	CellSize   float64
	ScriptFuel int64
	TickDT     float64
	// Workers fans each shard's query phase and trigger rounds across
	// that many goroutines per tick (default 1): total parallelism is
	// Shards × Workers, and the world hash stays identical for any
	// combination.
	Workers int
	// DirectTriggers selects the legacy single-threaded direct-write
	// trigger drain on every shard world.
	DirectTriggers bool
	// RowApply selects the legacy row-at-a-time effect apply on every
	// shard world instead of the columnar batch apply.
	RowApply bool
	// Pool overrides the worker pool shard ticks and world phases run
	// on (default: the process-wide sched.Shared() pool).
	Pool *sched.Pool
	// ConflictPolicy selects the apply phase's conflict resolution on
	// every shard world: world.ConflictLastWrite (default) or
	// world.ConflictOCC (serializable re-runs via read-set validation).
	ConflictPolicy string
	// EffectRetryCap bounds OCC re-run rounds (see world.Config).
	EffectRetryCap int
	// CompileBehaviors selects set-at-a-time compiled behavior execution
	// on every shard world (world.CompileOn / world.CompileOff; see
	// world.Config.CompileBehaviors). Bit-identical either way.
	CompileBehaviors string
	// Tracer records span-based tick traces across all shards plus the
	// coordinator barrier (nil = off); Profile is the per-behavior /
	// per-rule profiler shared by every shard world (nil = off). See
	// shard.Config.Tracer / Profile.
	Tracer  *obs.Tracer
	Profile *obs.Profiler

	// GhostBand is the mirrored border width (≥ the interaction range;
	// 0 = default 2×CellSize, negative disables ghosts); GhostFields
	// optionally overrides the consistency specs for ghost refresh
	// (default: x/y as Coarse).
	GhostBand   float64
	GhostFields []replica.FieldSpec

	// RebalanceEvery enables load-driven boundary rebalancing every
	// that many ticks (0 = static partition).
	RebalanceEvery int64

	// Reconcile selects the ghost-refresh strategy at the tick barrier:
	// shard.ReconcileIncremental (default — dirty-set driven off each
	// world's change feed) or shard.ReconcileFullScan (the legacy
	// per-field band sweep). Ship-for-ship identical either way.
	Reconcile string
	// ChangeFeed forces per-tick change-feed recording on every shard
	// world even under full-scan reconcile, for external consumers such
	// as the replica fan-out hub.
	ChangeFeed bool
}

// ShardedEngine is a sharded world runtime behind the same content and
// tick surface as Engine: one world partitioned into region shards,
// each ticking on its own goroutine under a barrier coordinator.
type ShardedEngine struct {
	Runtime *shard.Runtime
}

// NewSharded builds a sharded engine.
func NewSharded(opts ShardedOptions) (*ShardedEngine, error) {
	if opts.World.Width() <= 0 || opts.World.Height() <= 0 {
		return nil, fmt.Errorf("core: sharded engine needs a world rect with positive area")
	}
	rt, err := shard.New(shard.Config{
		Seed:           opts.Seed,
		Shards:         opts.Shards,
		World:          opts.World,
		CellSize:       opts.CellSize,
		ScriptFuel:     opts.ScriptFuel,
		TickDT:         opts.TickDT,
		Workers:        opts.Workers,
		DirectTriggers: opts.DirectTriggers,
		RowApply:       opts.RowApply,
		Pool:           opts.Pool,
		ConflictPolicy: opts.ConflictPolicy,
		EffectRetryCap: opts.EffectRetryCap,
		Tracer:         opts.Tracer,
		Profile:        opts.Profile,
		GhostBand:      opts.GhostBand,
		GhostFields:    opts.GhostFields,
		RebalanceEvery: opts.RebalanceEvery,
		Reconcile:      opts.Reconcile,
		ChangeFeed:     opts.ChangeFeed,

		CompileBehaviors: opts.CompileBehaviors,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedEngine{Runtime: rt}, nil
}

// LoadPackXML loads a content pack from XML into every shard; the pack's
// spawns run once, each entity materializing on the shard owning its
// position. Initial ghost mirrors are synchronized before return.
func (e *ShardedEngine) LoadPackXML(r io.Reader) error {
	c, errs := content.LoadAndCompile(r)
	if len(errs) > 0 {
		msg := "core: content pack rejected:"
		for _, err := range errs {
			msg += "\n  " + err.Error()
		}
		return fmt.Errorf("%s", msg)
	}
	if err := e.Runtime.LoadPack(c); err != nil {
		return err
	}
	return e.Runtime.Sync()
}

// Tick advances all shards one step through the tick barrier.
func (e *ShardedEngine) Tick() (shard.StepStats, error) { return e.Runtime.Step() }

// Spawn instantiates an archetype on the shard owning pos.
func (e *ShardedEngine) Spawn(archetype string, pos spatial.Vec2) (entity.ID, error) {
	return e.Runtime.Spawn(archetype, pos)
}

// Entities returns the owned-entity total across shards.
func (e *ShardedEngine) Entities() int { return e.Runtime.Entities() }

// Hash returns the deterministic digest of the owned world state; equal
// seeds yield equal hashes for any shard count.
func (e *ShardedEngine) Hash() uint64 { return e.Runtime.Hash() }

// ShardWorld returns shard i's world for inspection.
func (e *ShardedEngine) ShardWorld(i int) *world.World { return e.Runtime.ShardWorld(i) }

// Close stops the shard goroutines.
func (e *ShardedEngine) Close() { e.Runtime.Close() }
