package core

import (
	"strings"
	"testing"

	"gamedb/internal/entity"
	"gamedb/internal/persist"
	"gamedb/internal/replica"
	"gamedb/internal/spatial"
)

const packXML = `
<contentpack name="shard">
  <schema table="units">
    <column name="hp" kind="int" default="100"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="vx" kind="float"/>
    <column name="vy" kind="float"/>
  </schema>
  <archetype name="npc" table="units"/>
  <spawn archetype="npc" count="5" x="50" y="50" spread="10"/>
</contentpack>`

func TestEngineLifecycle(t *testing.T) {
	e, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadPackXML(strings.NewReader(packXML)); err != nil {
		t.Fatal(err)
	}
	if e.World.Entities() != 5 {
		t.Fatalf("entities = %d", e.World.Entities())
	}
	st, err := e.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 1 {
		t.Fatalf("tick = %d", st.Tick)
	}
	// No persistence configured: Checkpoint and recovery must refuse.
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint without persistence should fail")
	}
	if _, err := e.CrashAndRecover(); err == nil {
		t.Fatal("recover without persistence should fail")
	}
}

func TestLoadPackXMLAggregatesErrors(t *testing.T) {
	e, _ := New(Options{})
	err := e.LoadPackXML(strings.NewReader(`<contentpack name="x">
	  <schema table="t"><column name="a" kind="wat"/></schema>
	  <archetype name="o" table="zzz"/>
	</contentpack>`))
	if err == nil {
		t.Fatal("bad pack should fail")
	}
	if !strings.Contains(err.Error(), "unknown kind") || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("error should list all problems:\n%v", err)
	}
}

func TestPeriodicCheckpointingAndRecovery(t *testing.T) {
	e, err := New(Options{Seed: 1, Checkpoint: persist.Periodic{EveryTicks: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadPackXML(strings.NewReader(packXML)); err != nil {
		t.Fatal(err)
	}
	var id entity.ID = 1
	for i := 0; i < 25; i++ {
		if _, err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2 (ticks 10, 20)", e.Checkpoints)
	}
	// Mutate after the last checkpoint, then crash.
	e.World.Set(id, "hp", entity.Int(1))
	lost, err := e.CrashAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 5 {
		t.Fatalf("lost ticks = %d, want 5", lost)
	}
	v, err := e.World.Get(id, "hp")
	if err != nil {
		t.Fatal(err)
	}
	if v != entity.Int(100) {
		t.Fatalf("hp = %v, rollback failed", v)
	}
	if e.World.Tick() != 20 {
		t.Fatalf("tick after recovery = %d", e.World.Tick())
	}
}

func TestEventKeyedCheckpointOnImportant(t *testing.T) {
	e, err := New(Options{Seed: 1, Checkpoint: persist.EventKeyed{MaxTicks: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadPackXML(strings.NewReader(packXML)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.Tick()
	}
	if e.Checkpoints != 0 {
		t.Fatalf("checkpoints before important event = %d", e.Checkpoints)
	}
	if err := e.NoteImportant(); err != nil {
		t.Fatal(err)
	}
	if e.Checkpoints != 1 {
		t.Fatalf("checkpoints after important event = %d", e.Checkpoints)
	}
	lost, err := e.CrashAndRecover()
	if err != nil || lost != 0 {
		t.Fatalf("lost = %d, %v; important progress must survive", lost, err)
	}
}

func TestReplicationIntegration(t *testing.T) {
	e, err := New(Options{
		Seed: 1,
		ReplicaFields: []replica.FieldSpec{
			{Name: "hp", Class: replica.Exact},
			{Name: "x", Class: replica.Coarse, Epsilon: 5, MaxAge: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadPackXML(strings.NewReader(packXML)); err != nil {
		t.Fatal(err)
	}
	c := e.Replica.AddClient("p1", spatial.Vec2{X: 50, Y: 50}, 200)
	if _, err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	if c.Snapshots != 5 {
		t.Fatalf("client snapshots = %d, want 5", c.Snapshots)
	}
	// An exact field change ships next tick.
	e.World.Set(1, "hp", entity.Int(55))
	e.Tick()
	if got, _ := e.Replica.Get(1, "hp"); got != 55 {
		t.Fatalf("server hp = %v", got)
	}
	if d, _ := e.Replica.Divergence(c, "hp"); d != 0 {
		t.Fatalf("exact divergence = %v", d)
	}
	// Despawn propagates.
	e.World.Despawn(1)
	e.Tick()
	if c.Has(1) {
		t.Fatal("despawn did not propagate to client")
	}
}

func TestReplicaValidationFailure(t *testing.T) {
	if _, err := New(Options{ReplicaFields: []replica.FieldSpec{{Name: ""}}}); err == nil {
		t.Fatal("bad replica spec should fail")
	}
}
