package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndChromeExport(t *testing.T) {
	tr := NewTracer(64)
	c0 := tr.Context(0)
	c1 := tr.Context(1)
	if tr.Context(0) != c0 {
		t.Fatalf("Context(0) not stable")
	}
	start := time.Now()
	c0.Span(SpanQuery, 1, -1, start)
	c0.Span(SpanTick, 1, -1, start)
	c1.Span(SpanTrigRnd, 1, 2, start)
	tr.Context(CoordShard).Span(SpanBarrier, 1, -1, start)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(parsed.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(parsed.TraceEvents))
	}
	sawRound, sawCoord := false, false
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == SpanTrigRnd {
			if r, ok := ev.Args["round"].(float64); !ok || int(r) != 2 {
				t.Fatalf("round span args = %v", ev.Args)
			}
			sawRound = true
		}
		if ev.Name == SpanBarrier {
			// The coordinator track must land after every shard track.
			if ev.TID != 2 {
				t.Fatalf("barrier tid = %d, want 2", ev.TID)
			}
			sawCoord = true
		}
	}
	if !sawRound || !sawCoord {
		t.Fatalf("missing round (%v) or coordinator (%v) event", sawRound, sawCoord)
	}
}

func TestSpanRingWraps(t *testing.T) {
	tr := NewTracer(4)
	c := tr.Context(0)
	start := time.Now()
	for i := 0; i < 10; i++ {
		c.Span(SpanTick, int64(i), -1, start)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	// Oldest spans were overwritten: ticks 6..9 remain.
	seen := map[int64]bool{}
	for _, s := range spans {
		seen[s.Tick] = true
	}
	for tick := int64(6); tick < 10; tick++ {
		if !seen[tick] {
			t.Fatalf("tick %d missing after wrap; retained %v", tick, seen)
		}
	}
}

func TestSlowestTickTimeline(t *testing.T) {
	tr := NewTracer(16)
	c := tr.Context(0)
	base := tr.Epoch()
	// Hand-build spans with controlled durations via explicit starts.
	c.Span(SpanTick, 1, -1, base)
	slow := time.Now()
	time.Sleep(2 * time.Millisecond)
	c.Span(SpanTick, 2, -1, slow)
	tick, dur, ok := tr.SlowestTick()
	if !ok || tick != 2 || dur <= 0 {
		t.Fatalf("SlowestTick = (%d, %d, %v), want tick 2", tick, dur, ok)
	}
	var buf bytes.Buffer
	if err := tr.WriteSlowestTimeline(&buf); err != nil {
		t.Fatalf("WriteSlowestTimeline: %v", err)
	}
	if !strings.Contains(buf.String(), "tick 2") {
		t.Fatalf("timeline missing slowest tick:\n%s", buf.String())
	}
}

func TestNilObservabilityIsInert(t *testing.T) {
	var c *SpanCtx
	c.Span(SpanTick, 1, -1, time.Now()) // must not panic
	if c.Shard() != CoordShard {
		t.Fatalf("nil ctx shard = %d", c.Shard())
	}
	var p *Profiler
	e := p.Entry("x")
	if e != nil {
		t.Fatalf("nil profiler returned non-nil entry")
	}
	start, sampling := e.BeginSample()
	e.EndSample(start, sampling)
	e.AddCall(1, 2, 3)
	e.AddError()
	e.AddSkip()
	e.AddRetry()
	e.AddAbort()
	e.AddConflict()
	var tr *Tracer
	if tr.Context(0) != nil {
		t.Fatalf("nil tracer returned non-nil context")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer spans = %v", got)
	}
}

func TestProfilerAccounting(t *testing.T) {
	p := NewProfiler()
	e := p.Entry("behavior/pulser")
	if p.Entry("behavior/pulser") != e {
		t.Fatalf("Entry not idempotent")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				start, sampling := e.BeginSample()
				e.EndSample(start, sampling)
				e.AddCall(10, 2, 1)
			}
		}()
	}
	wg.Wait()
	e.AddError()
	e.AddSkip()
	e.AddRetry()
	e.AddAbort()
	e.AddConflict()
	rows := p.Rows()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Calls != 400 || r.Fuel != 4000 || r.Effects != 800 || r.Reads != 400 {
		t.Fatalf("row counters = %+v", r)
	}
	if r.Errors != 1 || r.Skips != 1 || r.Retries != 1 || r.Aborts != 1 || r.Conflicts != 1 {
		t.Fatalf("row event counters = %+v", r)
	}
	if r.Samples == 0 {
		t.Fatalf("400 calls produced no timing samples")
	}
	tbl := p.Table().String()
	if !strings.Contains(tbl, "behavior/pulser") {
		t.Fatalf("table missing entry:\n%s", tbl)
	}
}

func TestProfilerRowOrdering(t *testing.T) {
	p := NewProfiler()
	// b gets sampled time, a gets none: b must sort first.
	a := p.Entry("a")
	a.AddCall(1, 0, 0)
	b := p.Entry("b")
	for i := 0; i < 32; i++ {
		start, sampling := b.BeginSample()
		if sampling {
			time.Sleep(100 * time.Microsecond)
		}
		b.EndSample(start, sampling)
		b.AddCall(1, 0, 0)
	}
	rows := p.Rows()
	if len(rows) != 2 || rows[0].Name != "b" {
		t.Fatalf("rows not sorted by estimated time: %+v", rows)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks_total").Add(42)
	if r.Counter("ticks_total").Load() != 42 {
		t.Fatalf("Counter not idempotent")
	}
	h := r.Histogram("tick ns") // name needs sanitizing
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	r.Gauge("entities", func() float64 { return 7 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ticks_total counter\nticks_total 42\n",
		"# TYPE tick_ns summary\n",
		`tick_ns{quantile="0.5"}`,
		"tick_ns_sum 5050\ntick_ns_count 100\n",
		"# TYPE entities gauge\nentities 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if len(r.sortedNames()) != 3 {
		t.Fatalf("names = %v", r.sortedNames())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"tick ns":         "tick_ns",
		"behavior/pulser": "behavior_pulser",
		"9lives":          "_lives",
		"ok_name:sub":     "ok_name:sub",
		"":                "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Fatalf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ticks_total").Add(3)
	tr := NewTracer(16)
	tr.Context(0).Span(SpanTick, 1, -1, time.Now())
	prof := NewProfiler()
	prof.Entry("behavior/x").AddCall(1, 1, 0)

	srv, ln, err := Serve("127.0.0.1:0", NewServeMux(reg, tr, prof))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}
	if got := get("/metrics"); !strings.Contains(got, "ticks_total 3") {
		t.Fatalf("/metrics = %q", got)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(get("/trace")), &parsed); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	if got := get("/profile"); !strings.Contains(got, "behavior/x") {
		t.Fatalf("/profile = %q", got)
	}
	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Fatalf("pprof cmdline empty")
	}
}

func TestWriteTimelineUnknownTick(t *testing.T) {
	tr := NewTracer(4)
	var buf bytes.Buffer
	if err := tr.WriteTimeline(&buf, 99); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	if want := fmt.Sprintf("tick %d: no spans retained", 99); !strings.Contains(buf.String(), want) {
		t.Fatalf("got %q", buf.String())
	}
}
