package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"gamedb/internal/metrics"
)

// Registry is a process-wide snapshot point for counters, gauges and
// histograms, servable in the Prometheus text exposition format. The
// instruments are the metrics package's own (Counter, Histogram), so
// code already accounting with them registers the same objects instead
// of double-counting. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	order  []string // registration order, for stable exposition
	counts map[string]*metrics.Counter
	hists  map[string]*metrics.Histogram
	gauges map[string]func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*metrics.Counter),
		hists:  make(map[string]*metrics.Histogram),
		gauges: make(map[string]func() float64),
	}
}

// defaultRegistry is the process-wide registry Default returns.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the sims register into.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, registering a new one on first
// use (idempotent: the same name always yields the same counter).
func (r *Registry) Counter(name string) *metrics.Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &metrics.Counter{}
		r.counts[name] = c
		r.order = append(r.order, name)
	}
	return c
}

// Histogram returns the named histogram, registering a new one on
// first use. Exposed as a Prometheus summary (quantiles + sum + count).
func (r *Registry) Histogram(name string) *metrics.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &metrics.Histogram{}
		r.hists[name] = h
		r.order = append(r.order, name)
	}
	return h
}

// Gauge registers (or replaces) a named gauge read through fn at
// scrape time. fn must be safe to call from the serving goroutine.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.gauges[name]; !known {
		r.order = append(r.order, name)
	}
	r.gauges[name] = fn
}

// summaryQuantiles are the quantile labels a Histogram exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus writes every registered instrument in the Prometheus
// text exposition format (version 0.0.4), in registration order.
// Metric names are sanitized to the allowed charset.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	counts := make(map[string]*metrics.Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	hists := make(map[string]*metrics.Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()

	for _, name := range order {
		n := SanitizeMetricName(name)
		switch {
		case counts[name] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counts[name].Load()); err != nil {
				return err
			}
		case hists[name] != nil:
			h := hists[name]
			if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
				return err
			}
			for _, q := range summaryQuantiles {
				if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", n, fmt.Sprintf("%g", q), h.Quantile(q)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum(), n, h.Count()); err != nil {
				return err
			}
		case gauges[name] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, gauges[name]()); err != nil {
				return err
			}
		}
	}
	return nil
}

// SanitizeMetricName maps an arbitrary instrument name onto the
// Prometheus metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]*, replacing
// every disallowed rune with '_'.
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	out := []byte(s)
	for i := 0; i < len(out); i++ {
		c := out[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}

// sortedNames returns the registered names sorted (test helper and
// future labeled-family support).
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
