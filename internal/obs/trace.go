// Package obs is the runtime observability layer for the state-effect
// tick pipeline: span-based tick tracing (per-shard, per-phase, ring
// buffered, exportable as Chrome trace_event JSON), sampled
// per-behavior / per-rule profiling, and a process-wide metrics
// registry servable as Prometheus text plus net/http/pprof.
//
// Everything here is designed to be inert with respect to world state:
// recording a span or a profile sample reads clocks and bumps atomics
// but never touches tables, effect ordering, or RNG streams, so the
// workers×shards hash-invariance guarantees hold with observability
// enabled (the grid tests pin this). All hooks are nil-safe: a nil
// *SpanCtx, *Profiler or *ProfEntry makes every method a no-op, so
// instrumented code paths pay one nil check when observability is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span names recorded by the world and shard instrumentation. Phase
// spans nest inside the enclosing SpanTick.
const (
	SpanTick     = "tick"          // one world's whole Step
	SpanQuery    = "query"         // parallel read-only query phase
	SpanApply    = "apply"         // deterministic effect merge + apply
	SpanTrigger  = "trigger"       // whole trigger drain
	SpanTrigRnd  = "trigger.round" // one cascade round (Round = round index)
	SpanOCCRetry = "occ.retry"     // one OCC re-run round (Round = attempt)
	SpanBarrier  = "barrier"       // shard runtime's tick barrier
	SpanParallel = "parallel"      // shard runtime's parallel phase
	// Effect-forwarding exchange phases of the shard runtime's barrier:
	// gathering and routing outbound RemoteEffectBatches to their owning
	// shards, then validating and merging foreign records (plus the
	// cross-shard OCC re-runs the verdicts request).
	SpanForward     = "forward"
	SpanRemoteMerge = "remote-merge"
	// SpanReconcile is the barrier's ghost-refresh phase (dirty-set
	// driven or full-scan, per shard.Config.Reconcile); SpanFanout is
	// the replica hub's per-tick client fan-out (outside the barrier).
	SpanReconcile = "reconcile"
	SpanFanout    = "fanout"
	// Wire-transport phases of a peer barrier: SpanWire is the pipelined
	// encode+send of outbound barrier frames, launched concurrently so it
	// lands inside (not after) SpanReconcile; SpanWireRecv is the
	// blocking wait for inbound frames.
	SpanWire     = "wire"
	SpanWireRecv = "wire.recv"
)

// CoordShard is the shard index spans recorded by the coordinator (the
// shard runtime's barrier, outside any one shard world) carry.
const CoordShard = -1

// DefaultSpanCap is the per-shard ring capacity when NewTracer is given
// a non-positive one: with ~8 spans per tick it retains on the order of
// a thousand ticks per shard.
const DefaultSpanCap = 1 << 13

// Span is one recorded phase interval. Start is nanoseconds since the
// owning Tracer's epoch; Round is the trigger-round or OCC-attempt
// index, -1 for non-round spans.
type Span struct {
	Name  string
	Shard int
	Tick  int64
	Round int
	Start int64
	Dur   int64
}

// End returns the span's end offset in nanoseconds since the epoch.
func (s Span) End() int64 { return s.Start + s.Dur }

// Tracer owns the per-shard span contexts of one traced process. Spans
// land in fixed-capacity rings (oldest overwritten), so a tracer's
// memory is bounded no matter how long the run.
type Tracer struct {
	epoch time.Time
	cap   int

	mu   sync.Mutex
	ctxs []*SpanCtx
}

// NewTracer builds a tracer whose per-shard rings hold spanCap spans
// (DefaultSpanCap when spanCap <= 0).
func NewTracer(spanCap int) *Tracer {
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	return &Tracer{epoch: time.Now(), cap: spanCap}
}

// Epoch returns the tracer's time origin.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// Context returns shard's span context, creating it on first use.
// Contexts are stable: the same shard index always yields the same
// context, so a runtime can wire them once at construction.
func (t *Tracer) Context(shard int) *SpanCtx {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.ctxs {
		if c.shard == shard {
			return c
		}
	}
	c := &SpanCtx{tracer: t, shard: shard, ring: make([]Span, 0, t.cap)}
	t.ctxs = append(t.ctxs, c)
	return c
}

// SpanCtx is one shard's span sink. During a tick exactly one goroutine
// records into a context (each shard world steps single-threaded at the
// phase level), but the mutex makes concurrent export — the live /trace
// endpoint reading while the sim ticks — safe. The lock is uncontended
// a handful of times per tick, which is noise next to the phases being
// measured.
type SpanCtx struct {
	tracer *Tracer
	shard  int

	mu      sync.Mutex
	ring    []Span
	next    int  // overwrite cursor once the ring is full
	wrapped bool // ring has overwritten at least one span
}

// Shard returns the context's shard index.
func (c *SpanCtx) Shard() int {
	if c == nil {
		return CoordShard
	}
	return c.shard
}

// Span records one completed interval: started at start, ending now.
// Nil-safe; callers bracket a phase with `t0 := time.Now()` and a
// deferred-or-inline `ctx.Span(name, tick, round, t0)`.
func (c *SpanCtx) Span(name string, tick int64, round int, start time.Time) {
	if c == nil {
		return
	}
	s := Span{
		Name:  name,
		Shard: c.shard,
		Tick:  tick,
		Round: round,
		Start: start.Sub(c.tracer.epoch).Nanoseconds(),
		Dur:   time.Since(start).Nanoseconds(),
	}
	c.mu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, s)
	} else {
		c.ring[c.next] = s
		c.next++
		if c.next == cap(c.ring) {
			c.next = 0
		}
		c.wrapped = true
	}
	c.mu.Unlock()
}

// snapshot appends the context's retained spans, oldest first.
func (c *SpanCtx) snapshot(dst []Span) []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wrapped {
		dst = append(dst, c.ring[c.next:]...)
		dst = append(dst, c.ring[:c.next]...)
		return dst
	}
	return append(dst, c.ring...)
}

// Spans returns every retained span across all contexts, sorted by
// start offset (ties by shard then name, for deterministic export).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ctxs := append([]*SpanCtx(nil), t.ctxs...)
	t.mu.Unlock()
	var out []Span
	for _, c := range ctxs {
		out = c.snapshot(out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON
// object format: complete events ("ph":"X") with microsecond ts/dur.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace JSON object.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Meta        string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace exports every retained span as Chrome trace_event
// JSON (load in chrome://tracing or ui.perfetto.dev). Each shard maps
// to one thread track; the coordinator's barrier spans map to a track
// of their own (tid after the shards).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	maxShard := 0
	for _, s := range spans {
		if s.Shard > maxShard {
			maxShard = s.Shard
		}
	}
	tr := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), Meta: "ms"}
	for _, s := range spans {
		tid := s.Shard
		if tid == CoordShard {
			tid = maxShard + 1 // coordinator track after the shard tracks
		}
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "tick",
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			PID:  0,
			TID:  tid,
			Args: map[string]any{"tick": s.Tick},
		}
		if s.Round >= 0 {
			ev.Args["round"] = s.Round
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// SlowestTick scans the retained SpanTick spans and returns the tick
// number whose slowest shard span ran longest, with that duration.
// ok is false when no tick spans were recorded.
func (t *Tracer) SlowestTick() (tick int64, dur int64, ok bool) {
	for _, s := range t.Spans() {
		if s.Name != SpanTick {
			continue
		}
		if !ok || s.Dur > dur {
			tick, dur, ok = s.Tick, s.Dur, true
		}
	}
	return tick, dur, ok
}

// WriteTimeline prints a human-readable timeline of one tick's spans:
// every retained span of that tick, sorted by start, with offsets
// relative to the tick's earliest span. The shard column prints "coord"
// for coordinator (barrier) spans.
func (t *Tracer) WriteTimeline(w io.Writer, tick int64) error {
	var spans []Span
	for _, s := range t.Spans() {
		if s.Tick == tick {
			spans = append(spans, s)
		}
	}
	if len(spans) == 0 {
		_, err := fmt.Fprintf(w, "tick %d: no spans retained\n", tick)
		return err
	}
	base := spans[0].Start
	for _, s := range spans {
		if s.Start < base {
			base = s.Start
		}
	}
	if _, err := fmt.Fprintf(w, "tick %d timeline:\n", tick); err != nil {
		return err
	}
	for _, s := range spans {
		shard := fmt.Sprintf("shard %d", s.Shard)
		if s.Shard == CoordShard {
			shard = "coord"
		}
		round := ""
		if s.Round >= 0 {
			round = fmt.Sprintf(" (round %d)", s.Round)
		}
		if _, err := fmt.Fprintf(w, "  %-8s %-14s +%8.3fms %9.3fms%s\n",
			shard, s.Name, float64(s.Start-base)/1e6, float64(s.Dur)/1e6, round); err != nil {
			return err
		}
	}
	return nil
}

// WriteSlowestTimeline prints the timeline of the slowest retained tick
// (see SlowestTick); a no-op note when nothing was recorded.
func (t *Tracer) WriteSlowestTimeline(w io.Writer) error {
	tick, dur, ok := t.SlowestTick()
	if !ok {
		_, err := fmt.Fprintln(w, "trace: no tick spans recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "slowest retained tick: %d (%.3fms)\n", tick, float64(dur)/1e6); err != nil {
		return err
	}
	return t.WriteTimeline(w, tick)
}
