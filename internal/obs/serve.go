package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewServeMux builds the observability HTTP mux:
//
//	/metrics       Prometheus text exposition of reg
//	/trace         Chrome trace_event JSON of tracer's retained spans
//	/profile       the per-behavior / per-rule profile table as text
//	/debug/pprof/  the standard net/http/pprof handlers
//
// tracer and prof may be nil; their endpoints then serve 404. The
// endpoint is for operators, not players: it exposes pprof (heap
// contents, CPU profiles) and must only ever bind a trusted interface
// (localhost, or a private network behind auth) — see the README's
// Observability section.
func NewServeMux(reg *Registry, tracer *Tracer, prof *Profiler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	if tracer != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = tracer.WriteChromeTrace(w)
		})
	}
	if prof != nil {
		mux.HandleFunc("/profile", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			prof.Table().Fprint(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves mux in a background goroutine, returning
// the bound listener (so ":0" callers learn the port) and the server
// for shutdown. The sims call this behind their -listen flag.
func Serve(addr string, mux *http.ServeMux) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln, nil
}
