package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gamedb/internal/metrics"
)

// sampleMask times one in (sampleMask+1) invocations per entry. The
// counters (calls, effects, fuel, reads) are exact; only wall time is
// sampled, which keeps the two time.Now calls off the hot path for
// 15/16 invocations.
const sampleMask = 15

// ProfEntry accumulates one behavior's (or trigger rule's) query-phase
// profile. All fields are atomics so parallel workers attribute without
// locks; the entry itself is created once under the Profiler's mutex
// and cached per worker. Every method is nil-safe so instrumented
// paths read cleanly when profiling is off.
type ProfEntry struct {
	name string
	// compiled marks the entry as attributing compiled query-plan
	// execution (CompiledEntry) rather than interpreter execution, so
	// one behavior's plan and interpreter costs report side by side.
	compiled bool

	ticket atomic.Int64 // sampling ticket counter (≈ calls, may lead)

	calls   atomic.Int64 // completed invocations (errors and skips included)
	errors  atomic.Int64 // invocations failed with a script error
	skips   atomic.Int64 // invocations skipped on fuel exhaustion
	fuel    atomic.Int64 // interpreter fuel consumed
	effects atomic.Int64 // effect records that survived the invocation
	reads   atomic.Int64 // read-set cells recorded (OCC policy only)

	retries   atomic.Int64 // OCC re-runs attributed to this entry
	aborts    atomic.Int64 // OCC aborts attributed to this entry
	conflicts atomic.Int64 // apply-phase dropped records attributed here

	sampleNS atomic.Int64 // summed wall time of the sampled invocations
	samples  atomic.Int64 // number of timed invocations
}

// Name returns the entry's attribution key.
func (e *ProfEntry) Name() string {
	if e == nil {
		return ""
	}
	return e.name
}

// Compiled reports whether the entry attributes compiled-plan
// execution.
func (e *ProfEntry) Compiled() bool { return e != nil && e.compiled }

// BeginSample claims a sampling ticket: roughly one in sampleMask+1
// calls returns sampling=true with the start timestamp; the rest pay a
// single atomic add.
func (e *ProfEntry) BeginSample() (start time.Time, sampling bool) {
	if e == nil {
		return time.Time{}, false
	}
	if e.ticket.Add(1)&sampleMask != 1 {
		return time.Time{}, false
	}
	return time.Now(), true
}

// EndSample closes a timed invocation opened by BeginSample.
func (e *ProfEntry) EndSample(start time.Time, sampling bool) {
	if !sampling || e == nil {
		return
	}
	e.sampleNS.Add(time.Since(start).Nanoseconds())
	e.samples.Add(1)
}

// AddCall records one completed invocation's exact counters: fuel
// consumed, surviving effect records, and read-set cells (0 unless the
// OCC policy tracks reads).
func (e *ProfEntry) AddCall(fuel, effects, reads int64) {
	if e == nil {
		return
	}
	e.calls.Add(1)
	e.fuel.Add(fuel)
	e.effects.Add(effects)
	e.reads.Add(reads)
}

// AddError counts one script-error invocation.
func (e *ProfEntry) AddError() {
	if e != nil {
		e.errors.Add(1)
	}
}

// AddSkip counts one fuel-exhausted (skipped) invocation.
func (e *ProfEntry) AddSkip() {
	if e != nil {
		e.skips.Add(1)
	}
}

// AddRetry counts one OCC re-run of this entry's invocation.
func (e *ProfEntry) AddRetry() {
	if e != nil {
		e.retries.Add(1)
	}
}

// AddAbort counts one OCC abort of this entry's invocation.
func (e *ProfEntry) AddAbort() {
	if e != nil {
		e.aborts.Add(1)
	}
}

// AddConflict counts one apply-phase record drop attributed to this
// entry (its target despawned mid-apply, a lost despawn/post race, …).
func (e *ProfEntry) AddConflict() {
	if e != nil {
		e.conflicts.Add(1)
	}
}

// Profiler aggregates per-behavior / per-rule entries. Entry lookup
// takes a mutex, so hot paths cache the returned *ProfEntry (the world
// keeps per-worker caches keyed by behavior name and caches rule
// entries on the bound trigger itself).
type Profiler struct {
	mu      sync.Mutex
	entries map[string]*ProfEntry
}

// NewProfiler builds an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{entries: make(map[string]*ProfEntry)}
}

// Entry returns the named entry, creating it on first use. Nil-safe:
// a nil profiler returns a nil entry, whose methods are no-ops.
func (p *Profiler) Entry(name string) *ProfEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		e = &ProfEntry{name: name}
		p.entries[name] = e
	}
	return e
}

// CompiledEntry returns the named entry's compiled-execution twin,
// creating it on first use. It shares the display name but is a
// distinct accumulator tagged compiled=true, so a behavior that splits
// between the query-plan path and interpreter fallback reports both
// costs separately. Nil-safe like Entry.
func (p *Profiler) CompiledEntry(name string) *ProfEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := "compiled\x00" + name
	e := p.entries[key]
	if e == nil {
		e = &ProfEntry{name: name, compiled: true}
		p.entries[key] = e
	}
	return e
}

// ProfRow is one entry's consistent snapshot.
type ProfRow struct {
	Name string
	// Compiled marks rows attributing compiled query-plan execution;
	// the same behavior may also have an interpreter row under the same
	// name for its fallback share.
	Compiled  bool
	Calls     int64
	Errors    int64
	Skips     int64
	Fuel      int64
	Effects   int64
	Reads     int64
	Retries   int64
	Aborts    int64
	Conflicts int64
	// Samples and AvgNS describe the timed subsample; EstTotalNS
	// extrapolates AvgNS × Calls, the estimated total interpreter time.
	Samples    int64
	AvgNS      float64
	EstTotalNS float64
}

// Rows snapshots every entry, sorted by estimated total time
// descending (ties by name, so the report is deterministic).
func (p *Profiler) Rows() []ProfRow {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	entries := make([]*ProfEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	p.mu.Unlock()
	rows := make([]ProfRow, 0, len(entries))
	for _, e := range entries {
		r := ProfRow{
			Name:      e.name,
			Compiled:  e.compiled,
			Calls:     e.calls.Load(),
			Errors:    e.errors.Load(),
			Skips:     e.skips.Load(),
			Fuel:      e.fuel.Load(),
			Effects:   e.effects.Load(),
			Reads:     e.reads.Load(),
			Retries:   e.retries.Load(),
			Aborts:    e.aborts.Load(),
			Conflicts: e.conflicts.Load(),
			Samples:   e.samples.Load(),
		}
		if r.Samples > 0 {
			r.AvgNS = float64(e.sampleNS.Load()) / float64(r.Samples)
			r.EstTotalNS = r.AvgNS * float64(r.Calls)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].EstTotalNS != rows[j].EstTotalNS {
			return rows[i].EstTotalNS > rows[j].EstTotalNS
		}
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return !rows[i].Compiled && rows[j].Compiled
	})
	return rows
}

// Table renders the profile as an aligned metrics.Table, the same
// report shape the experiment harness prints.
func (p *Profiler) Table() *metrics.Table {
	t := metrics.NewTable("per-behavior / per-rule profile (time sampled 1-in-16)",
		"unit", "calls", "avg time", "est total", "effects", "reads", "fuel",
		"conflicts", "retries", "aborts", "err", "skip")
	for _, r := range p.Rows() {
		name := r.Name
		if r.Compiled {
			name += " [compiled]"
		}
		t.AddRow(name,
			metrics.Fnum(float64(r.Calls)),
			metrics.Fdur(r.AvgNS),
			metrics.Fdur(r.EstTotalNS),
			metrics.Fnum(float64(r.Effects)),
			metrics.Fnum(float64(r.Reads)),
			metrics.Fnum(float64(r.Fuel)),
			metrics.Fnum(float64(r.Conflicts)),
			metrics.Fnum(float64(r.Retries)),
			metrics.Fnum(float64(r.Aborts)),
			metrics.Fnum(float64(r.Errors)),
			metrics.Fnum(float64(r.Skips)))
	}
	return t
}
