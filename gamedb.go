// Package gamedb is a game-state database engine: the systems described
// in "Database Research in Computer Games" (Demers, Gehrke, Koch, Sowell,
// White — SIGMOD 2009) built as one coherent Go library.
//
// The engine stores game state in typed component tables with secondary
// and spatial indexes, runs designer-authored content (XML packs with GSL
// behavior scripts and event triggers, optionally in the loop-free
// "restricted mode" studios use to bound script cost), processes
// interactions as set-at-a-time queries instead of Ω(n²) script loops,
// partitions load with causality bubbles, replicates state to clients
// under per-field consistency tiers, and checkpoints intelligently on
// important events rather than on a timer. The tick itself follows the
// paper's state-effect pattern: behaviors run as read-only queries over
// the frozen tick-start state on Options.Workers goroutines, emitting
// typed effects that merge and apply deterministically — the same seed
// produces the same world at any parallelism.
//
// Quick start:
//
//	eng, err := gamedb.New(gamedb.Options{Seed: 42})
//	if err != nil { ... }
//	if err := eng.LoadPackXML(packFile); err != nil { ... }
//	for i := 0; i < 1000; i++ {
//	    if _, err := eng.Tick(); err != nil { ... }
//	}
//
// See examples/ for runnable scenarios and cmd/gamebench for the full
// experiment suite.
package gamedb

import (
	"gamedb/internal/core"
	"gamedb/internal/entity"
	"gamedb/internal/obs"
	"gamedb/internal/persist"
	"gamedb/internal/replica"
	"gamedb/internal/shard"
	"gamedb/internal/spatial"
	"gamedb/internal/world"
)

// Engine is a running game shard; see core.Engine for method docs.
type Engine = core.Engine

// Options configures New.
type Options = core.Options

// ShardedEngine is a world partitioned into N region shards, ticking
// in parallel on the process-wide worker pool under a tick-barrier
// coordinator that performs cross-shard entity handoff and ghost
// replication; see core.ShardedEngine and internal/shard for method
// docs.
type ShardedEngine = core.ShardedEngine

// ShardedOptions configures OpenSharded.
type ShardedOptions = core.ShardedOptions

// ShardStepStats summarizes one sharded tick (handoffs, ghost traffic,
// parallel/barrier wall time).
type ShardStepStats = shard.StepStats

// Rect is an axis-aligned world-space rectangle (shard regions, the
// world bounds passed to OpenSharded).
type Rect = spatial.Rect

// NewRect builds a rectangle from extreme coordinates.
func NewRect(x0, y0, x1, y1 float64) Rect { return spatial.NewRect(x0, y0, x1, y1) }

// World is the tick-based simulation a shard runs.
type World = world.World

// TickStats summarizes one tick.
type TickStats = world.TickStats

// Vec2 is a world-space point or vector.
type Vec2 = spatial.Vec2

// ID identifies an entity.
type ID = entity.ID

// Value is a dynamically typed table cell.
type Value = entity.Value

// Value constructors.
var (
	Int   = entity.Int
	Float = entity.Float
	Str   = entity.Str
	Bool  = entity.Bool
)

// FieldSpec configures one replicated field; Exact, Coarse and Cosmetic
// are its consistency classes.
type FieldSpec = replica.FieldSpec

// Consistency classes for FieldSpec.
const (
	Exact    = replica.Exact
	Coarse   = replica.Coarse
	Cosmetic = replica.Cosmetic
)

// Compiled-behavior modes for Options.CompileBehaviors /
// ShardedOptions.CompileBehaviors: CompileOn lowers compilable behavior
// scripts onto set-at-a-time query plans at pack load (non-compilable
// bodies fall back to the interpreter per entity), CompileOff (and "")
// interprets everything. World state is bit-identical either way.
const (
	CompileOn  = world.CompileOn
	CompileOff = world.CompileOff
)

// Checkpoint policies for Options.Checkpoint.
type (
	// Periodic checkpoints on a fixed tick interval.
	Periodic = persist.Periodic
	// EventKeyed checkpoints on important events (intelligent
	// checkpointing).
	EventKeyed = persist.EventKeyed
)

// Tracer records span-based tick traces for Options.Tracer /
// ShardedOptions.Tracer; export with WriteChromeTrace or
// WriteSlowestTimeline. Profiler attributes interpreter time, effects,
// reads, conflicts, retries and aborts per behavior / trigger rule for
// Options.Profile / ShardedOptions.Profile. Both are inert with respect
// to world state (the grid tests pin it).
type (
	Tracer   = obs.Tracer
	Profiler = obs.Profiler
)

// Observability constructors: a span tracer (spanCap spans retained
// per shard; <= 0 selects DefaultSpanCap), a profiler, and the
// /metrics + pprof HTTP rig the sims serve (operators only: bind a
// trusted interface).
var (
	NewTracer   = obs.NewTracer
	NewProfiler = obs.NewProfiler
	NewServeMux = obs.NewServeMux
	Serve       = obs.Serve
)

// DefaultSpanCap is the per-shard span-ring capacity the sims use.
const DefaultSpanCap = obs.DefaultSpanCap

// New builds an engine.
func New(opts Options) (*Engine, error) { return core.New(opts) }

// OpenSharded builds a sharded world runtime: the map is partitioned
// into opts.Shards spatial regions, each running as an independent
// world ticked in parallel on the shared worker pool; a tick barrier
// migrates entities that cross region boundaries and mirrors
// border-band neighbors as read-only ghosts so boundary-straddling
// queries stay correct.
func OpenSharded(opts ShardedOptions) (*ShardedEngine, error) { return core.NewSharded(opts) }
