// Command gamebench regenerates every experiment table in DESIGN.md's
// index (E1–E12), printing them in paper style. Use -quick for reduced
// sizes and -only to run a single experiment.
//
//	gamebench            # full suite
//	gamebench -quick     # CI-sized suite
//	gamebench -only E7   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gamedb/internal/experiment"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	only := flag.String("only", "", "run a single experiment by id (e.g. E7 or A1)")
	flag.Parse()

	drivers := experiment.All()
	if *only != "" {
		d, ok := experiment.ByID(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "gamebench: unknown experiment %q; have E1..E12, A1..A3\n", *only)
			os.Exit(2)
		}
		drivers = []experiment.Driver{d}
	}

	fmt.Printf("gamedb experiment suite — %d experiment(s), quick=%v\n\n", len(drivers), *quick)
	start := time.Now()
	for _, d := range drivers {
		t0 := time.Now()
		tbl := d.Run(*quick)
		tbl.Fprint(os.Stdout)
		fmt.Printf("  [%s in %s]\n\n", d.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("suite completed in %s\n", time.Since(start).Round(time.Millisecond))
}
