// Command gamebench regenerates every experiment table in DESIGN.md's
// index (E1–E12), printing them in paper style. Use -quick for reduced
// sizes, -only to run a single experiment, and -json for
// machine-readable results (the BENCH_*.json perf-trajectory format).
//
//	gamebench                    # full suite
//	gamebench -quick             # CI-sized suite
//	gamebench -only E7           # one experiment
//	gamebench -json > BENCH.json # machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gamedb/internal/experiment"
	"gamedb/internal/metrics"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	only := flag.String("only", "", "run a single experiment by id (e.g. E7 or A1)")
	jsonOut := flag.Bool("json", false, "emit machine-readable benchmark JSON on stdout instead of tables")
	flag.Parse()

	drivers := experiment.All()
	if *only != "" {
		d, ok := experiment.ByID(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "gamebench: unknown experiment %q; have E1..E12, E17..E19, E21..E23, A1..A3\n", *only)
			os.Exit(2)
		}
		drivers = []experiment.Driver{d}
	}

	if !*jsonOut {
		fmt.Printf("gamedb experiment suite — %d experiment(s), quick=%v\n\n", len(drivers), *quick)
	}
	start := time.Now()
	rep := metrics.BenchReport{Suite: "gamebench"}
	for _, d := range drivers {
		t0 := time.Now()
		tbl := d.Run(*quick)
		elapsed := time.Since(t0)
		if *jsonOut {
			rep.Records = append(rep.Records, metrics.BenchRecord{
				Name:    d.ID,
				NsPerOp: float64(elapsed.Nanoseconds()),
				Extra: map[string]any{
					"title": d.Title,
					// quick runs are orders of magnitude smaller;
					// perf trajectories must not mix the two.
					"quick":  *quick,
					"header": tbl.Header,
					"rows":   tbl.Rows,
				},
			})
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("  [%s in %s]\n\n", d.ID, elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		if err := metrics.WriteBenchJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "gamebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("suite completed in %s\n", time.Since(start).Round(time.Millisecond))
}
