// Command shardsim races a seed-fixed scenario across shard counts: the
// same world is run on 1, 2, 4, ... region shards and the runtime
// reports tick throughput, handoff rate, ghost-band traffic, forwarded
// cross-shard effects and the final world hash — which must be identical
// for every shard count (cross-shard handoff and ghost replication
// preserve physics-driven state bit-exactly, and writes targeting ghost
// mirrors forward to their owning shard through the tick barrier).
//
// The same race can run over the wire: -wire pipe swaps the in-process
// barrier for frame-exchanging Peers on an in-process pipe mesh, -wire
// tcp for loopback sockets, and -net N launches N actual OS processes —
// one shard each, meshed over TCP — and asserts their world hash equals
// the in-process run's bit for bit.
//
//	shardsim                          # race 1,2,4,8 shards
//	shardsim -shards 1,4 -ticks 500   # custom race
//	shardsim -scenario border         # cross-shard-write crowd: raiders
//	                                  # and medics writing each other
//	                                  # across region boundaries
//	shardsim -scenario mingle         # apply-heavy neighborhood crowd
//	shardsim -wire pipe               # shards as wire peers, pipe mesh
//	shardsim -net 2 -ticks 50         # 2 shard processes over TCP vs
//	                                  # the in-process barrier
//	shardsim -workers 4               # W query-phase workers per shard;
//	                                  # the hash must still agree
//	shardsim -json > BENCH_shard.json # machine-readable results
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gamedb/internal/metrics"
	"gamedb/internal/obs"
	"gamedb/internal/shard"
	"gamedb/internal/spatial"
	"gamedb/internal/wire"
	"gamedb/internal/world"
)

func parseShardList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// raceConfig builds the shard config one (scenario, shard count) race
// runs under. It is the single source of scenario-forced settings —
// the in-process race, the wire clusters and the -net worker processes
// all call it, which is what makes their hashes comparable.
func raceConfig(scenario string, shards, workers int, seed int64, side, band float64, rebalance int64, rowApply bool, conflict, compile, reconcile string) shard.Config {
	cfg := shard.Config{
		Seed:           seed,
		Shards:         shards,
		Workers:        workers,
		World:          spatial.NewRect(0, 0, side, side),
		CellSize:       16,
		TickDT:         0.5,
		GhostBand:      band,
		RebalanceEvery: rebalance,
		RowApply:       rowApply,
		ConflictPolicy: conflict,
		Reconcile:      reconcile,

		CompileBehaviors: compile,
	}
	switch scenario {
	case "border":
		// Border writes are exact only when the read fields mirror
		// Exactly and the band covers the 9.0 interaction radius.
		cfg.GhostFields = shard.BorderGhostFields()
		if cfg.GhostBand < 9 {
			cfg.GhostBand = 20
		}
	case "mingle":
		// Mingle reads neighbors' positions through mirrors (8.0
		// radius), so x/y must ship Exact and the band must cover it.
		cfg.GhostFields = shard.MingleGhostFields()
		if cfg.GhostBand < 8 {
			cfg.GhostBand = 20
		}
	}
	return cfg
}

// scenarioSpeed is each scenario's drift speed (part of the workload
// identity; parent and -net workers must agree).
func scenarioSpeed(scenario string) float64 {
	switch scenario {
	case "border":
		return 6
	case "mingle":
		return 30
	default:
		return 40
	}
}

type raceResult struct {
	shards         int
	ticksPerSec    float64
	entitiesPerSec float64
	handoffsPerTik float64
	ghosts         int
	ghostShips     int64
	ghostSkips     int64
	reconcileNS    int64
	feedCells      int64
	forwarded      int64
	remoteMerged   int64
	remoteInval    int64
	stepP99NS      float64
	scriptCalls    int64
	compiledCalls  int64
	wireBytesOut   int64
	wireBytesIn    int64
	wireFrames     int64
	hash           uint64
	elapsed        time.Duration
}

// raceObs is the optional observability rig one race runs under:
// tracer/profiler attachment, live-registry feeding and per-tick
// reporting. The zero value is fully inert.
type raceObs struct {
	tracer *obs.Tracer
	prof   *obs.Profiler
	reg    *obs.Registry
	live   *atomic.Int64 // entity gauge backing
	report int           // print per-tick stats every N ticks (0 = off)
}

// grid abstracts the two barrier implementations a race can drive: the
// in-process Runtime and the wire Cluster.
type grid interface {
	Step() (shard.StepStats, error)
	Hash() (uint64, error)
	Close() error
}

// runtimeGrid adapts *shard.Runtime to the grid interface.
type runtimeGrid struct{ rt *shard.Runtime }

func (g runtimeGrid) Step() (shard.StepStats, error) { return g.rt.Step() }
func (g runtimeGrid) Hash() (uint64, error)          { return g.rt.Hash(), nil }
func (g runtimeGrid) Close() error                   { g.rt.Close(); return nil }

func seedScenario(g grid, scenario string, entities int, side float64, seed int64) error {
	speed := scenarioSpeed(scenario)
	switch t := g.(type) {
	case runtimeGrid:
		switch scenario {
		case "border":
			return shard.SeedBorderCrowd(t.rt, entities, side, seed, speed)
		case "mingle":
			return shard.SeedMingleCrowd(t.rt, entities, side, seed, speed)
		default:
			return shard.SeedDriftingCrowd(t.rt, entities, side, seed, speed)
		}
	case *shard.Cluster:
		switch scenario {
		case "border":
			return shard.SeedBorderCluster(t, entities, side, seed, speed)
		case "mingle":
			return shard.SeedMingleCluster(t, entities, side, seed, speed)
		default:
			return shard.SeedDriftingCluster(t, entities, side, seed, speed)
		}
	}
	return fmt.Errorf("shardsim: unknown grid type %T", g)
}

func runRace(scenario, wireMode string, shards, workers, entities, ticks int, seed int64, side, band float64, rebalance int64, rowApply bool, conflict, compile, reconcile string, ro raceObs) (raceResult, error) {
	cfg := raceConfig(scenario, shards, workers, seed, side, band, rebalance, rowApply, conflict, compile, reconcile)
	cfg.Tracer = ro.tracer
	cfg.Profile = ro.prof
	var g grid
	var rt *shard.Runtime
	var err error
	switch wireMode {
	case "pipe":
		g, err = shard.NewPipeCluster(cfg)
	case "tcp":
		g, err = shard.NewTCPCluster(cfg)
	default:
		rt, err = shard.New(cfg)
		if err == nil {
			g = runtimeGrid{rt}
		}
	}
	if err != nil {
		return raceResult{}, err
	}
	defer g.Close()

	if err := seedScenario(g, scenario, entities, side, seed); err != nil {
		return raceResult{}, err
	}

	printTick := func(st shard.StepStats) {
		fmt.Printf("  [%d shards] tick %4d  entities=%d ghosts=%d handoffs=%d ghost-ships=%d\n",
			shards, st.Tick, st.Entities, st.Ghosts, st.Handoffs, st.GhostShips)
	}
	lastPrinted := false
	var res raceResult
	res.shards = shards
	start := time.Now()
	for i := 0; i < ticks; i++ {
		tickStart := time.Now()
		st, err := g.Step()
		if err != nil {
			return raceResult{}, err
		}
		for _, ws := range st.Shards {
			res.scriptCalls += int64(ws.ScriptCalls)
			res.compiledCalls += int64(ws.CompiledCalls)
		}
		res.handoffsPerTik += float64(st.Handoffs)
		res.ghostShips += int64(st.GhostShips)
		res.ghostSkips += int64(st.GhostFieldSkips)
		res.reconcileNS += st.ReconcileNS
		res.forwarded += int64(st.EffectsForwarded)
		res.remoteMerged += int64(st.EffectsRemoteMerged)
		res.remoteInval += int64(st.RemoteInvalidations)
		res.wireBytesOut += st.WireBytesOut
		res.wireBytesIn += st.WireBytesIn
		res.wireFrames += st.WireFrames
		res.ghosts = st.Ghosts
		if ro.reg != nil {
			ro.live.Store(int64(st.Entities))
			ro.reg.Counter("shardsim_ticks_total").Inc()
			ro.reg.Counter("shardsim_handoffs_total").Add(int64(st.Handoffs))
			ro.reg.Counter("shardsim_ghost_ships_total").Add(int64(st.GhostShips))
			ro.reg.Counter("shardsim_effects_forwarded_total").Add(int64(st.EffectsForwarded))
			ro.reg.Counter("shardsim_effects_remote_merged_total").Add(int64(st.EffectsRemoteMerged))
			ro.reg.Counter("shardsim_remote_invalidations_total").Add(int64(st.RemoteInvalidations))
			ro.reg.Counter("shardsim_wire_bytes_out_total").Add(st.WireBytesOut)
			ro.reg.Counter("shardsim_wire_bytes_in_total").Add(st.WireBytesIn)
			ro.reg.Counter("shardsim_wire_frames_total").Add(st.WireFrames)
			ro.reg.Histogram("shardsim_tick_ns").Record(float64(time.Since(tickStart).Nanoseconds()))
		}
		lastPrinted = false
		if ro.report > 0 && int(st.Tick)%ro.report == 0 {
			printTick(st)
			lastPrinted = true
		}
		// The race's final tick always prints under -report, whether or
		// not -report divides -ticks: the exit state is the line people
		// read.
		if ro.report > 0 && i == ticks-1 && !lastPrinted {
			printTick(st)
		}
	}
	res.elapsed = time.Since(start)
	res.handoffsPerTik /= float64(ticks)

	secs := res.elapsed.Seconds()
	res.ticksPerSec = float64(ticks) / secs
	res.entitiesPerSec = float64(ticks) * float64(entities) / secs
	if rt != nil {
		// Runtime-only tallies: feed bookkeeping and the step-latency
		// sketch live on the in-process coordinator.
		res.feedCells = rt.FeedCellTotal.Load()
		res.stepP99NS = rt.StepNS.Quantile(0.99)
	}
	res.hash, err = g.Hash()
	if err != nil {
		return raceResult{}, err
	}
	return res, nil
}

// freeLoopbackAddrs reserves n distinct loopback TCP addresses by
// listening and immediately closing. The usual bind race applies; the
// mesh's dial retry plus the short window make it reliable in practice
// (this is the standard test-port pattern).
func freeLoopbackAddrs(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			break
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	var err error
	for _, ln := range lns {
		if cerr := ln.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err == nil && len(addrs) != n {
		err = fmt.Errorf("reserved %d of %d loopback ports", len(addrs), n)
	}
	return addrs, err
}

// netWorkerReport is what worker 0 prints on stdout for the parent.
type netWorkerReport struct {
	Hash         string `json:"hash"`
	Entities     int    `json:"entities"`
	WireBytesOut int64  `json:"wire_bytes_out"`
	WireBytesIn  int64  `json:"wire_bytes_in"`
	WireFrames   int64  `json:"wire_frames"`
}

// runNetWorker is one shard process of a -net grid: build the TCP mesh
// endpoint, seed the shared scenario in lockstep, run the ticks, and
// (worker 0 only) print the gathered world hash as JSON.
func runNetWorker(self int, addrs []string, scenario string, entities, ticks, workers int, seed int64, side, band float64, rebalance int64, rowApply bool, conflict, compile, reconcile string) error {
	cfg := raceConfig(scenario, len(addrs), workers, seed, side, band, rebalance, rowApply, conflict, compile, reconcile)
	mesh, err := wire.NewTCPMesh(self, addrs)
	if err != nil {
		return err
	}
	p, err := shard.NewPeer(cfg, mesh)
	if err != nil {
		mesh.Close()
		return err
	}
	defer p.Close()
	speed := scenarioSpeed(scenario)
	switch scenario {
	case "border":
		err = shard.SeedBorderPeer(p, entities, side, seed, speed)
	case "mingle":
		err = shard.SeedMinglePeer(p, entities, side, seed, speed)
	default:
		err = shard.SeedDriftingPeer(p, entities, side, seed, speed)
	}
	if err != nil {
		return err
	}
	var rep netWorkerReport
	for i := 0; i < ticks; i++ {
		st, err := p.Step()
		if err != nil {
			return err
		}
		rep.WireBytesOut += st.WireBytesOut
		rep.WireBytesIn += st.WireBytesIn
		rep.WireFrames += st.WireFrames
		rep.Entities = st.Entities
	}
	h, err := p.Hash()
	if err != nil {
		return err
	}
	if self == 0 {
		rep.Hash = fmt.Sprintf("%016x", h)
		return json.NewEncoder(os.Stdout).Encode(rep)
	}
	return nil
}

// runNetRace is the -net parent: run the reference in-process race,
// then launch one OS process per shard meshed over loopback TCP, and
// compare hashes. Exits the process on mismatch.
func runNetRace(netShards int, scenario string, entities, ticks, workers int, seed int64, side, band float64, rebalance int64, rowApply bool, conflict, compile, reconcile string, jsonOut bool) {
	ref, err := runRace(scenario, "", netShards, workers, entities, ticks, seed, side, band, rebalance, rowApply, conflict, compile, reconcile, raceObs{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardsim: -net reference run: %v\n", err)
		os.Exit(1)
	}
	addrs, err := freeLoopbackAddrs(netShards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardsim: -net: %v\n", err)
		os.Exit(1)
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardsim: -net: %v\n", err)
		os.Exit(1)
	}
	args := []string{
		"-net-worker",
		"-net-addrs", strings.Join(addrs, ","),
		"-scenario", scenario,
		"-entities", strconv.Itoa(entities),
		"-ticks", strconv.Itoa(ticks),
		"-workers", strconv.Itoa(workers),
		"-seed", strconv.FormatInt(seed, 10),
		"-side", strconv.FormatFloat(side, 'g', -1, 64),
		"-band", strconv.FormatFloat(band, 'g', -1, 64),
		"-rebalance", strconv.FormatInt(rebalance, 10),
		"-row-apply=" + strconv.FormatBool(rowApply),
		"-conflict", conflict,
		"-compile", compile,
		"-reconcile", reconcile,
	}
	start := time.Now()
	cmds := make([]*exec.Cmd, netShards)
	var out0 bytes.Buffer
	for i := 0; i < netShards; i++ {
		cmd := exec.Command(exe, append([]string{"-net-self", strconv.Itoa(i)}, args...)...)
		cmd.Stderr = os.Stderr
		if i == 0 {
			cmd.Stdout = &out0
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: -net: start worker %d: %v\n", i, err)
			os.Exit(1)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: -net: worker %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)
	var rep netWorkerReport
	if err := json.Unmarshal(out0.Bytes(), &rep); err != nil {
		fmt.Fprintf(os.Stderr, "shardsim: -net: worker 0 report: %v (got %q)\n", err, out0.String())
		os.Exit(1)
	}
	refHash := fmt.Sprintf("%016x", ref.hash)
	match := rep.Hash == refHash
	if jsonOut {
		out := metrics.BenchReport{Suite: "shardsim-net", Records: []metrics.BenchRecord{{
			Name:    fmt.Sprintf("shardsim/net/%s/shards-%d", scenario, netShards),
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(ticks),
			Extra: map[string]any{
				"scenario":         scenario,
				"shards":           netShards,
				"conflict_policy":  conflict,
				"hash":             rep.Hash,
				"hash_inprocess":   refHash,
				"match":            match,
				"entities":         rep.Entities,
				"wire_bytes_out":   rep.WireBytesOut,
				"wire_bytes_in":    rep.WireBytesIn,
				"wire_frames":      rep.WireFrames,
				"net_ticks_per_s":  float64(ticks) / elapsed.Seconds(),
				"proc_ticks_per_s": ref.ticksPerSec,
			},
		}}}
		if err := metrics.WriteBenchJSON(os.Stdout, out); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("shardsim -net: %d shard processes over TCP, %s scenario, %d ticks\n", netShards, scenario, ticks)
		fmt.Printf("  in-process hash: %s\n  processes hash:  %s\n", refHash, rep.Hash)
		fmt.Printf("  wire: %d frames, %d bytes out, %d bytes in (worker 0)\n", rep.WireFrames, rep.WireBytesOut, rep.WireBytesIn)
	}
	if !match {
		fmt.Fprintln(os.Stderr, "shardsim: FAIL — separate-process hash diverged from in-process run")
		os.Exit(1)
	}
	if !jsonOut {
		fmt.Println("  separate-process grid matches the in-process barrier bit for bit ✓")
	}
}

func main() {
	shardList := flag.String("shards", "1,2,4,8", "comma-separated shard counts to race")
	scenario := flag.String("scenario", "drift", "workload: drift (velocity crowd, no cross-shard writes) | border (raiders/medics writing each other across region boundaries through the barrier's effect-forwarding exchange) | mingle (apply-heavy neighborhood crowd, x/y mirrored Exact)")
	entities := flag.Int("entities", 4000, "entities in the scenario")
	ticks := flag.Int("ticks", 200, "ticks to simulate per race")
	seed := flag.Int64("seed", 2009, "scenario seed")
	side := flag.Float64("side", 2000, "world side length")
	band := flag.Float64("band", 24, "ghost border band width (negative disables ghosts)")
	rebalance := flag.Int64("rebalance", 50, "rebalance boundaries every N ticks (0 = static)")
	workers := flag.Int("workers", 1, "per-shard query-phase workers (hash is identical for any value)")
	rowApply := flag.Bool("row-apply", false, "use the legacy row-at-a-time effect apply (hash is identical either way)")
	conflict := flag.String("conflict", world.ConflictLastWrite, "conflict policy for conflicting assignments: lastwrite | occ (hash is identical across shard counts under either)")
	compile := flag.String("compile", world.CompileOff, "behavior execution on every shard world: off (interpret) | on (compile to set-at-a-time query plans, hash identical either way)")
	reconcile := flag.String("reconcile", shard.ReconcileIncremental, "ghost refresh at the barrier: incremental (dirty-set driven off per-tick change feeds) | fullscan (legacy band sweep; ship-for-ship and hash identical either way)")
	wireMode := flag.String("wire", "inprocess", "barrier transport: inprocess (coordinator runtime) | pipe (wire peers on an in-process pipe mesh) | tcp (wire peers over loopback sockets); hash is identical across all three")
	netShards := flag.Int("net", 0, "launch N separate shard PROCESSES meshed over loopback TCP and assert their hash equals the in-process run (ignores -shards/-wire)")
	jsonOut := flag.Bool("json", false, "emit machine-readable benchmark JSON on stdout")
	report := flag.Int("report", 0, "print per-tick stats every N ticks during each race (0 = off; the final tick of a race always prints)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the LAST raced shard count's tick spans to this file")
	profileOn := flag.Bool("profile", false, "print the per-behavior / per-rule profile of the LAST raced shard count")
	listen := flag.String("listen", "", "serve /metrics, /trace, /profile and /debug/pprof on this address (operators only; bind a trusted interface such as 127.0.0.1:8080)")
	linger := flag.Duration("linger", 0, "keep the -listen endpoint serving this long after the races finish")
	netWorker := flag.Bool("net-worker", false, "internal: run as one shard process of a -net grid")
	netSelf := flag.Int("net-self", 0, "internal: this -net worker's shard index")
	netAddrs := flag.String("net-addrs", "", "internal: comma-separated mesh addresses of the -net grid")
	flag.Parse()
	if *conflict != world.ConflictLastWrite && *conflict != world.ConflictOCC {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -conflict %q (want lastwrite or occ)\n", *conflict)
		os.Exit(2)
	}
	if *compile != world.CompileOff && *compile != world.CompileOn {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -compile %q (want on or off)\n", *compile)
		os.Exit(2)
	}
	if *reconcile != shard.ReconcileIncremental && *reconcile != shard.ReconcileFullScan {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -reconcile %q (want incremental or fullscan)\n", *reconcile)
		os.Exit(2)
	}
	if *scenario != "drift" && *scenario != "border" && *scenario != "mingle" {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -scenario %q (want drift, border or mingle)\n", *scenario)
		os.Exit(2)
	}
	if *wireMode != "inprocess" && *wireMode != "pipe" && *wireMode != "tcp" {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -wire %q (want inprocess, pipe or tcp)\n", *wireMode)
		os.Exit(2)
	}

	if *netWorker {
		addrs := strings.Split(*netAddrs, ",")
		if err := runNetWorker(*netSelf, addrs, *scenario, *entities, *ticks, *workers, *seed, *side, *band, *rebalance, *rowApply, *conflict, *compile, *reconcile); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: net worker %d: %v\n", *netSelf, err)
			os.Exit(1)
		}
		return
	}
	if *netShards > 0 {
		runNetRace(*netShards, *scenario, *entities, *ticks, *workers, *seed, *side, *band, *rebalance, *rowApply, *conflict, *compile, *reconcile, *jsonOut)
		return
	}

	counts, err := parseShardList(*shardList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
		os.Exit(2)
	}

	// Observability rig: the tracer and profiler attach to the LAST
	// raced shard count only (one runtime's worth of spans/attribution,
	// not four interleaved); the registry and endpoint span all races.
	var tracer *obs.Tracer
	if *tracePath != "" || *listen != "" {
		tracer = obs.NewTracer(obs.DefaultSpanCap)
	}
	var prof *obs.Profiler
	if *profileOn || *listen != "" {
		prof = obs.NewProfiler()
	}
	var reg *obs.Registry
	var liveEntities atomic.Int64
	if *listen != "" {
		reg = obs.Default()
		reg.Gauge("shardsim_entities", func() float64 { return float64(liveEntities.Load()) })
		srv, ln, err := obs.Serve(*listen, obs.NewServeMux(reg, tracer, prof))
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "shardsim: serving metrics on http://%s/metrics\n", ln.Addr())
	}

	if !*jsonOut {
		fmt.Printf("shardsim: %d entities on a %.0f×%.0f map, %d ticks, %d workers/shard, %s barrier, %d cores\n\n",
			*entities, *side, *side, *ticks, *workers, *wireMode, runtime.GOMAXPROCS(0))
	}
	tbl := metrics.NewTable(fmt.Sprintf("sharded world runtime race (%s scenario, %s barrier)", *scenario, *wireMode),
		"shards", "ticks/sec", "entities/sec", "handoffs/tick", "ghosts", "ghost-ships", "fwd", "hash")
	rep := metrics.BenchReport{Suite: "shardsim"}
	var firstHash uint64
	hashesAgree := true
	for i, n := range counts {
		ro := raceObs{reg: reg, live: &liveEntities}
		if !*jsonOut {
			ro.report = *report
		}
		if i == len(counts)-1 {
			ro.tracer, ro.prof = tracer, prof
		}
		res, err := runRace(*scenario, *wireMode, n, *workers, *entities, *ticks, *seed, *side, *band, *rebalance, *rowApply, *conflict, *compile, *reconcile, ro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %d shards: %v\n", n, err)
			os.Exit(1)
		}
		if i == 0 {
			firstHash = res.hash
		} else if res.hash != firstHash {
			hashesAgree = false
		}
		tbl.AddRowf(res.shards, res.ticksPerSec, res.entitiesPerSec,
			res.handoffsPerTik, res.ghosts, res.ghostShips, res.forwarded,
			fmt.Sprintf("%016x", res.hash))
		rep.Records = append(rep.Records, metrics.BenchRecord{
			Name:           fmt.Sprintf("shardsim/%s/shards-%d", *scenario, n),
			NsPerOp:        float64(res.elapsed.Nanoseconds()) / float64(*ticks),
			EntitiesPerSec: res.entitiesPerSec,
			Extra: map[string]any{
				"scenario":              *scenario,
				"workers":               *workers,
				"wire":                  *wireMode,
				"conflict_policy":       *conflict,
				"compile_behaviors":     *compile,
				"compiled_calls":        res.compiledCalls,
				"script_calls":          res.scriptCalls,
				"ticks_per_sec":         res.ticksPerSec,
				"handoffs_per_tick":     res.handoffsPerTik,
				"ghosts":                res.ghosts,
				"ghost_ships":           res.ghostShips,
				"ghost_field_skips":     res.ghostSkips,
				"reconcile":             *reconcile,
				"reconcile_ns_per_tick": float64(res.reconcileNS) / float64(*ticks),
				"feed_cells":            res.feedCells,
				"effects_forwarded":     res.forwarded,
				"effects_remote_merged": res.remoteMerged,
				"remote_invalidations":  res.remoteInval,
				"wire_bytes_out":        res.wireBytesOut,
				"wire_bytes_in":         res.wireBytesIn,
				"wire_frames":           res.wireFrames,
				"step_p99_ns":           res.stepP99NS,
				"hash":                  fmt.Sprintf("%016x", res.hash),
			},
		})
	}
	if *jsonOut {
		if *profileOn {
			// Attribution rode on the last race only; attach it there.
			rep.Records[len(rep.Records)-1].Extra["profile"] = prof.Rows()
		}
		if err := metrics.WriteBenchJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		tbl.Note = "hash must be identical across shard counts: handoff, ghost replication and barrier-forwarded cross-shard effects preserve state bit-exactly"
		tbl.Fprint(os.Stdout)
		if *profileOn {
			fmt.Println()
			prof.Table().Fprint(os.Stdout)
		}
	}
	if !hashesAgree {
		fmt.Fprintln(os.Stderr, "shardsim: FAIL — world hash diverged across shard counts")
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("\nall shard counts produced the identical world hash ✓")
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "shardsim: wrote trace of the %d-shard race to %s\n", counts[len(counts)-1], *tracePath)
		tracer.WriteSlowestTimeline(os.Stderr)
	}
	if *listen != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "shardsim: lingering %v for scrapers\n", *linger)
		time.Sleep(*linger)
	}
}
