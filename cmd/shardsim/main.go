// Command shardsim races a seed-fixed drifting-crowd scenario across
// shard counts: the same world is run on 1, 2, 4, ... region shards and
// the runtime reports tick throughput, handoff rate, ghost-band traffic
// and the final world hash — which must be identical for every shard
// count (cross-shard handoff and ghost replication preserve
// physics-driven state bit-exactly; script behaviors reading neighbors
// would instead see the weakened Coarse ghost view).
//
//	shardsim                          # race 1,2,4,8 shards
//	shardsim -shards 1,4 -ticks 500   # custom race
//	shardsim -workers 4               # W query-phase workers per shard;
//	                                  # the hash must still agree
//	shardsim -json > BENCH_shard.json # machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gamedb/internal/metrics"
	"gamedb/internal/shard"
	"gamedb/internal/spatial"
	"gamedb/internal/world"
)

func parseShardList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

type raceResult struct {
	shards         int
	ticksPerSec    float64
	entitiesPerSec float64
	handoffsPerTik float64
	ghosts         int
	ghostShips     int64
	stepP99NS      float64
	hash           uint64
	elapsed        time.Duration
}

func runRace(shards, workers, entities, ticks int, seed int64, side, band float64, rebalance int64, rowApply bool, conflict string) (raceResult, error) {
	rt, err := shard.New(shard.Config{
		Seed:           seed,
		Shards:         shards,
		Workers:        workers,
		World:          spatial.NewRect(0, 0, side, side),
		CellSize:       16,
		TickDT:         0.5,
		GhostBand:      band,
		RebalanceEvery: rebalance,
		RowApply:       rowApply,
		ConflictPolicy: conflict,
	})
	if err != nil {
		return raceResult{}, err
	}
	defer rt.Close()

	if err := shard.SeedDriftingCrowd(rt, entities, side, seed, 40); err != nil {
		return raceResult{}, err
	}

	start := time.Now()
	for i := 0; i < ticks; i++ {
		if _, err := rt.Step(); err != nil {
			return raceResult{}, err
		}
	}
	elapsed := time.Since(start)

	secs := elapsed.Seconds()
	return raceResult{
		shards:         shards,
		ticksPerSec:    float64(ticks) / secs,
		entitiesPerSec: float64(ticks) * float64(entities) / secs,
		handoffsPerTik: float64(rt.HandoffTotal.Load()) / float64(ticks),
		ghosts:         rt.Ghosts(),
		ghostShips:     rt.GhostShipTotal.Load(),
		stepP99NS:      rt.StepNS.Quantile(0.99),
		hash:           rt.Hash(),
		elapsed:        elapsed,
	}, nil
}

func main() {
	shardList := flag.String("shards", "1,2,4,8", "comma-separated shard counts to race")
	entities := flag.Int("entities", 4000, "entities in the scenario")
	ticks := flag.Int("ticks", 200, "ticks to simulate per race")
	seed := flag.Int64("seed", 2009, "scenario seed")
	side := flag.Float64("side", 2000, "world side length")
	band := flag.Float64("band", 24, "ghost border band width (negative disables ghosts)")
	rebalance := flag.Int64("rebalance", 50, "rebalance boundaries every N ticks (0 = static)")
	workers := flag.Int("workers", 1, "per-shard query-phase workers (hash is identical for any value)")
	rowApply := flag.Bool("row-apply", false, "use the legacy row-at-a-time effect apply (hash is identical either way)")
	conflict := flag.String("conflict", world.ConflictLastWrite, "conflict policy for conflicting assignments: lastwrite | occ (hash is identical across shard counts under either)")
	jsonOut := flag.Bool("json", false, "emit machine-readable benchmark JSON on stdout")
	flag.Parse()
	if *conflict != world.ConflictLastWrite && *conflict != world.ConflictOCC {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -conflict %q (want lastwrite or occ)\n", *conflict)
		os.Exit(2)
	}

	counts, err := parseShardList(*shardList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
		os.Exit(2)
	}

	if !*jsonOut {
		fmt.Printf("shardsim: %d entities on a %.0f×%.0f map, %d ticks, %d workers/shard, %d cores\n\n",
			*entities, *side, *side, *ticks, *workers, runtime.GOMAXPROCS(0))
	}
	tbl := metrics.NewTable("sharded world runtime race",
		"shards", "ticks/sec", "entities/sec", "handoffs/tick", "ghosts", "ghost-ships", "hash")
	rep := metrics.BenchReport{Suite: "shardsim"}
	var firstHash uint64
	hashesAgree := true
	for i, n := range counts {
		res, err := runRace(n, *workers, *entities, *ticks, *seed, *side, *band, *rebalance, *rowApply, *conflict)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %d shards: %v\n", n, err)
			os.Exit(1)
		}
		if i == 0 {
			firstHash = res.hash
		} else if res.hash != firstHash {
			hashesAgree = false
		}
		tbl.AddRowf(res.shards, res.ticksPerSec, res.entitiesPerSec,
			res.handoffsPerTik, res.ghosts, res.ghostShips,
			fmt.Sprintf("%016x", res.hash))
		rep.Records = append(rep.Records, metrics.BenchRecord{
			Name:           fmt.Sprintf("shardsim/shards-%d", n),
			NsPerOp:        float64(res.elapsed.Nanoseconds()) / float64(*ticks),
			EntitiesPerSec: res.entitiesPerSec,
			Extra: map[string]any{
				"workers":           *workers,
				"conflict_policy":   *conflict,
				"ticks_per_sec":     res.ticksPerSec,
				"handoffs_per_tick": res.handoffsPerTik,
				"ghosts":            res.ghosts,
				"ghost_ships":       res.ghostShips,
				"step_p99_ns":       res.stepP99NS,
				"hash":              fmt.Sprintf("%016x", res.hash),
			},
		})
	}
	if *jsonOut {
		if err := metrics.WriteBenchJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		tbl.Note = "hash must be identical across shard counts: handoff + ghost replication preserve state bit-exactly"
		tbl.Fprint(os.Stdout)
	}
	if !hashesAgree {
		fmt.Fprintln(os.Stderr, "shardsim: FAIL — world hash diverged across shard counts")
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("\nall shard counts produced the identical world hash ✓")
	}
}
