// Command shardsim races a seed-fixed scenario across shard counts: the
// same world is run on 1, 2, 4, ... region shards and the runtime
// reports tick throughput, handoff rate, ghost-band traffic, forwarded
// cross-shard effects and the final world hash — which must be identical
// for every shard count (cross-shard handoff and ghost replication
// preserve physics-driven state bit-exactly, and writes targeting ghost
// mirrors forward to their owning shard through the tick barrier).
//
//	shardsim                          # race 1,2,4,8 shards
//	shardsim -shards 1,4 -ticks 500   # custom race
//	shardsim -scenario border         # cross-shard-write crowd: raiders
//	                                  # and medics writing each other
//	                                  # across region boundaries
//	shardsim -workers 4               # W query-phase workers per shard;
//	                                  # the hash must still agree
//	shardsim -json > BENCH_shard.json # machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gamedb/internal/metrics"
	"gamedb/internal/obs"
	"gamedb/internal/shard"
	"gamedb/internal/spatial"
	"gamedb/internal/world"
)

func parseShardList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

type raceResult struct {
	shards         int
	ticksPerSec    float64
	entitiesPerSec float64
	handoffsPerTik float64
	ghosts         int
	ghostShips     int64
	ghostSkips     int64
	reconcileNS    int64
	feedCells      int64
	forwarded      int64
	remoteMerged   int64
	remoteInval    int64
	stepP99NS      float64
	scriptCalls    int64
	compiledCalls  int64
	hash           uint64
	elapsed        time.Duration
}

// raceObs is the optional observability rig one race runs under:
// tracer/profiler attachment, live-registry feeding and per-tick
// reporting. The zero value is fully inert.
type raceObs struct {
	tracer *obs.Tracer
	prof   *obs.Profiler
	reg    *obs.Registry
	live   *atomic.Int64 // entity gauge backing
	report int           // print per-tick stats every N ticks (0 = off)
}

func runRace(scenario string, shards, workers, entities, ticks int, seed int64, side, band float64, rebalance int64, rowApply bool, conflict, compile, reconcile string, ro raceObs) (raceResult, error) {
	cfg := shard.Config{
		Seed:           seed,
		Shards:         shards,
		Workers:        workers,
		World:          spatial.NewRect(0, 0, side, side),
		CellSize:       16,
		TickDT:         0.5,
		GhostBand:      band,
		RebalanceEvery: rebalance,
		RowApply:       rowApply,
		ConflictPolicy: conflict,
		Reconcile:      reconcile,
		Tracer:         ro.tracer,
		Profile:        ro.prof,

		CompileBehaviors: compile,
	}
	if scenario == "border" {
		// Border writes are exact only when the read fields mirror
		// Exactly and the band covers the 9.0 interaction radius.
		cfg.GhostFields = shard.BorderGhostFields()
		if cfg.GhostBand < 9 {
			cfg.GhostBand = 20
		}
	}
	rt, err := shard.New(cfg)
	if err != nil {
		return raceResult{}, err
	}
	defer rt.Close()

	if scenario == "border" {
		err = shard.SeedBorderCrowd(rt, entities, side, seed, 6)
	} else {
		err = shard.SeedDriftingCrowd(rt, entities, side, seed, 40)
	}
	if err != nil {
		return raceResult{}, err
	}

	printTick := func(st shard.StepStats) {
		fmt.Printf("  [%d shards] tick %4d  entities=%d ghosts=%d handoffs=%d ghost-ships=%d\n",
			shards, st.Tick, st.Entities, st.Ghosts, st.Handoffs, st.GhostShips)
	}
	lastPrinted := false
	var scriptCalls, compiledCalls int64
	start := time.Now()
	for i := 0; i < ticks; i++ {
		tickStart := time.Now()
		st, err := rt.Step()
		if err != nil {
			return raceResult{}, err
		}
		for _, ws := range st.Shards {
			scriptCalls += int64(ws.ScriptCalls)
			compiledCalls += int64(ws.CompiledCalls)
		}
		if ro.reg != nil {
			ro.live.Store(int64(st.Entities))
			ro.reg.Counter("shardsim_ticks_total").Inc()
			ro.reg.Counter("shardsim_handoffs_total").Add(int64(st.Handoffs))
			ro.reg.Counter("shardsim_ghost_ships_total").Add(int64(st.GhostShips))
			ro.reg.Counter("shardsim_effects_forwarded_total").Add(int64(st.EffectsForwarded))
			ro.reg.Counter("shardsim_effects_remote_merged_total").Add(int64(st.EffectsRemoteMerged))
			ro.reg.Counter("shardsim_remote_invalidations_total").Add(int64(st.RemoteInvalidations))
			ro.reg.Histogram("shardsim_tick_ns").Record(float64(time.Since(tickStart).Nanoseconds()))
		}
		lastPrinted = false
		if ro.report > 0 && int(st.Tick)%ro.report == 0 {
			printTick(st)
			lastPrinted = true
		}
		// The race's final tick always prints under -report, whether or
		// not -report divides -ticks: the exit state is the line people
		// read.
		if ro.report > 0 && i == ticks-1 && !lastPrinted {
			printTick(st)
		}
	}
	elapsed := time.Since(start)

	secs := elapsed.Seconds()
	return raceResult{
		shards:         shards,
		ticksPerSec:    float64(ticks) / secs,
		entitiesPerSec: float64(ticks) * float64(entities) / secs,
		handoffsPerTik: float64(rt.HandoffTotal.Load()) / float64(ticks),
		ghosts:         rt.Ghosts(),
		ghostShips:     rt.GhostShipTotal.Load(),
		ghostSkips:     rt.GhostFieldSkipTotal.Load(),
		reconcileNS:    rt.ReconcileNSTotal.Load(),
		feedCells:      rt.FeedCellTotal.Load(),
		forwarded:      rt.ForwardTotal.Load(),
		remoteMerged:   rt.RemoteMergeTotal.Load(),
		remoteInval:    rt.RemoteInvalidationTotal.Load(),
		stepP99NS:      rt.StepNS.Quantile(0.99),
		scriptCalls:    scriptCalls,
		compiledCalls:  compiledCalls,
		hash:           rt.Hash(),
		elapsed:        elapsed,
	}, nil
}

func main() {
	shardList := flag.String("shards", "1,2,4,8", "comma-separated shard counts to race")
	scenario := flag.String("scenario", "drift", "workload: drift (velocity crowd, no cross-shard writes) | border (raiders/medics writing each other across region boundaries through the barrier's effect-forwarding exchange)")
	entities := flag.Int("entities", 4000, "entities in the scenario")
	ticks := flag.Int("ticks", 200, "ticks to simulate per race")
	seed := flag.Int64("seed", 2009, "scenario seed")
	side := flag.Float64("side", 2000, "world side length")
	band := flag.Float64("band", 24, "ghost border band width (negative disables ghosts)")
	rebalance := flag.Int64("rebalance", 50, "rebalance boundaries every N ticks (0 = static)")
	workers := flag.Int("workers", 1, "per-shard query-phase workers (hash is identical for any value)")
	rowApply := flag.Bool("row-apply", false, "use the legacy row-at-a-time effect apply (hash is identical either way)")
	conflict := flag.String("conflict", world.ConflictLastWrite, "conflict policy for conflicting assignments: lastwrite | occ (hash is identical across shard counts under either)")
	compile := flag.String("compile", world.CompileOff, "behavior execution on every shard world: off (interpret) | on (compile to set-at-a-time query plans, hash identical either way)")
	reconcile := flag.String("reconcile", shard.ReconcileIncremental, "ghost refresh at the barrier: incremental (dirty-set driven off per-tick change feeds) | fullscan (legacy band sweep; ship-for-ship and hash identical either way)")
	jsonOut := flag.Bool("json", false, "emit machine-readable benchmark JSON on stdout")
	report := flag.Int("report", 0, "print per-tick stats every N ticks during each race (0 = off; the final tick of a race always prints)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the LAST raced shard count's tick spans to this file")
	profileOn := flag.Bool("profile", false, "print the per-behavior / per-rule profile of the LAST raced shard count")
	listen := flag.String("listen", "", "serve /metrics, /trace, /profile and /debug/pprof on this address (operators only; bind a trusted interface such as 127.0.0.1:8080)")
	linger := flag.Duration("linger", 0, "keep the -listen endpoint serving this long after the races finish")
	flag.Parse()
	if *conflict != world.ConflictLastWrite && *conflict != world.ConflictOCC {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -conflict %q (want lastwrite or occ)\n", *conflict)
		os.Exit(2)
	}
	if *compile != world.CompileOff && *compile != world.CompileOn {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -compile %q (want on or off)\n", *compile)
		os.Exit(2)
	}
	if *reconcile != shard.ReconcileIncremental && *reconcile != shard.ReconcileFullScan {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -reconcile %q (want incremental or fullscan)\n", *reconcile)
		os.Exit(2)
	}
	if *scenario != "drift" && *scenario != "border" {
		fmt.Fprintf(os.Stderr, "shardsim: unknown -scenario %q (want drift or border)\n", *scenario)
		os.Exit(2)
	}

	counts, err := parseShardList(*shardList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
		os.Exit(2)
	}

	// Observability rig: the tracer and profiler attach to the LAST
	// raced shard count only (one runtime's worth of spans/attribution,
	// not four interleaved); the registry and endpoint span all races.
	var tracer *obs.Tracer
	if *tracePath != "" || *listen != "" {
		tracer = obs.NewTracer(obs.DefaultSpanCap)
	}
	var prof *obs.Profiler
	if *profileOn || *listen != "" {
		prof = obs.NewProfiler()
	}
	var reg *obs.Registry
	var liveEntities atomic.Int64
	if *listen != "" {
		reg = obs.Default()
		reg.Gauge("shardsim_entities", func() float64 { return float64(liveEntities.Load()) })
		srv, ln, err := obs.Serve(*listen, obs.NewServeMux(reg, tracer, prof))
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "shardsim: serving metrics on http://%s/metrics\n", ln.Addr())
	}

	if !*jsonOut {
		fmt.Printf("shardsim: %d entities on a %.0f×%.0f map, %d ticks, %d workers/shard, %d cores\n\n",
			*entities, *side, *side, *ticks, *workers, runtime.GOMAXPROCS(0))
	}
	tbl := metrics.NewTable(fmt.Sprintf("sharded world runtime race (%s scenario)", *scenario),
		"shards", "ticks/sec", "entities/sec", "handoffs/tick", "ghosts", "ghost-ships", "fwd", "hash")
	rep := metrics.BenchReport{Suite: "shardsim"}
	var firstHash uint64
	hashesAgree := true
	for i, n := range counts {
		ro := raceObs{reg: reg, live: &liveEntities}
		if !*jsonOut {
			ro.report = *report
		}
		if i == len(counts)-1 {
			ro.tracer, ro.prof = tracer, prof
		}
		res, err := runRace(*scenario, n, *workers, *entities, *ticks, *seed, *side, *band, *rebalance, *rowApply, *conflict, *compile, *reconcile, ro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %d shards: %v\n", n, err)
			os.Exit(1)
		}
		if i == 0 {
			firstHash = res.hash
		} else if res.hash != firstHash {
			hashesAgree = false
		}
		tbl.AddRowf(res.shards, res.ticksPerSec, res.entitiesPerSec,
			res.handoffsPerTik, res.ghosts, res.ghostShips, res.forwarded,
			fmt.Sprintf("%016x", res.hash))
		rep.Records = append(rep.Records, metrics.BenchRecord{
			Name:           fmt.Sprintf("shardsim/%s/shards-%d", *scenario, n),
			NsPerOp:        float64(res.elapsed.Nanoseconds()) / float64(*ticks),
			EntitiesPerSec: res.entitiesPerSec,
			Extra: map[string]any{
				"scenario":              *scenario,
				"workers":               *workers,
				"conflict_policy":       *conflict,
				"compile_behaviors":     *compile,
				"compiled_calls":        res.compiledCalls,
				"script_calls":          res.scriptCalls,
				"ticks_per_sec":         res.ticksPerSec,
				"handoffs_per_tick":     res.handoffsPerTik,
				"ghosts":                res.ghosts,
				"ghost_ships":           res.ghostShips,
				"ghost_field_skips":     res.ghostSkips,
				"reconcile":             *reconcile,
				"reconcile_ns_per_tick": float64(res.reconcileNS) / float64(*ticks),
				"feed_cells":            res.feedCells,
				"effects_forwarded":     res.forwarded,
				"effects_remote_merged": res.remoteMerged,
				"remote_invalidations":  res.remoteInval,
				"step_p99_ns":           res.stepP99NS,
				"hash":                  fmt.Sprintf("%016x", res.hash),
			},
		})
	}
	if *jsonOut {
		if *profileOn {
			// Attribution rode on the last race only; attach it there.
			rep.Records[len(rep.Records)-1].Extra["profile"] = prof.Rows()
		}
		if err := metrics.WriteBenchJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		tbl.Note = "hash must be identical across shard counts: handoff, ghost replication and barrier-forwarded cross-shard effects preserve state bit-exactly"
		tbl.Fprint(os.Stdout)
		if *profileOn {
			fmt.Println()
			prof.Table().Fprint(os.Stdout)
		}
	}
	if !hashesAgree {
		fmt.Fprintln(os.Stderr, "shardsim: FAIL — world hash diverged across shard counts")
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("\nall shard counts produced the identical world hash ✓")
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "shardsim: wrote trace of the %d-shard race to %s\n", counts[len(counts)-1], *tracePath)
		tracer.WriteSlowestTimeline(os.Stderr)
	}
	if *listen != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "shardsim: lingering %v for scrapers\n", *linger)
		time.Sleep(*linger)
	}
}
