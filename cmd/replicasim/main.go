// Command replicasim races a synthetic client crowd against a sharded
// world: the runtime ticks a scenario, each tick's sealed change feeds
// pump the dirty rows into a replica fan-out hub, and the hub ships
// delta-encoded updates to every client window under per-client byte
// budgets — reporting fan-out bytes/tick, staleness percentiles and
// tier degradation. The point is the scaling shape: per-tick fan-out
// work is O(dirty rows + clients touched), so six-figure client counts
// ride on the same feed the ghost reconcile already pays for.
//
//	replicasim                                  # 10k clients, border crowd
//	replicasim -clients 100000 -ticks 100       # the 100k regime
//	replicasim -slow-frac 0.2                   # 20% throttled clients:
//	                                            # watch tiers degrade
//	replicasim -scenario mingle -reconcile fullscan
//	replicasim -json > BENCH_replica.json       # machine-readable record
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"gamedb/internal/metrics"
	"gamedb/internal/replica"
	"gamedb/internal/shard"
	"gamedb/internal/spatial"
)

// scenarioSpecs picks the replicated fields per scenario: positions as
// Coarse (epsilon + staleness deadline), one persistent Exact field,
// one Cosmetic field on a low-rate schedule.
func scenarioSpecs(scenario string) []replica.FieldSpec {
	switch scenario {
	case "mingle":
		return []replica.FieldSpec{
			{Name: "x", Class: replica.Coarse, Epsilon: 0.5, MaxAge: 10},
			{Name: "y", Class: replica.Coarse, Epsilon: 0.5, MaxAge: 10},
			{Name: "met", Class: replica.Exact},
		}
	default: // border
		return []replica.FieldSpec{
			{Name: "x", Class: replica.Coarse, Epsilon: 0.5, MaxAge: 10},
			{Name: "y", Class: replica.Coarse, Epsilon: 0.5, MaxAge: 10},
			{Name: "hp", Class: replica.Exact},
			{Name: "kb", Class: replica.Cosmetic, Period: 4},
		}
	}
}

func main() {
	clients := flag.Int("clients", 10000, "synthetic clients connected to the fan-out hub")
	ticks := flag.Int("ticks", 200, "ticks to simulate")
	shards := flag.Int("shards", 4, "region shards")
	workers := flag.Int("workers", 4, "per-shard query-phase workers")
	scenario := flag.String("scenario", "border", "workload: border (cross-shard-write crowd) | mingle (flocking crowd)")
	units := flag.Int("units", 4000, "entities in the scenario")
	side := flag.Float64("side", 2000, "world side length")
	seed := flag.Int64("seed", 2009, "scenario and client-placement seed")
	aoi := flag.Float64("aoi", 64, "client area-of-interest radius")
	cell := flag.Float64("cell", 32, "interest cell size")
	budget := flag.Int("budget", 1500, "per-client per-tick drain budget in modeled bytes")
	slowFrac := flag.Float64("slow-frac", 0.05, "fraction of clients throttled to budget/8 (induces backpressure and tier degradation)")
	drift := flag.Float64("drift", 0.02, "fraction of clients whose focus moves each tick")
	reconcile := flag.String("reconcile", shard.ReconcileIncremental, "ghost refresh strategy: incremental | fullscan (fan-out works under both; hash identical)")
	wireSizing := flag.Bool("wire", false, "price fan-out messages by wire-encoding them (internal/wire codec) instead of modeled byte constants")
	report := flag.Int("report", 0, "print per-tick fan-out stats every N ticks (0 = off)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable benchmark record on stdout")
	flag.Parse()
	if *scenario != "border" && *scenario != "mingle" {
		fmt.Fprintf(os.Stderr, "replicasim: unknown -scenario %q (want border or mingle)\n", *scenario)
		os.Exit(2)
	}
	if *reconcile != shard.ReconcileIncremental && *reconcile != shard.ReconcileFullScan {
		fmt.Fprintf(os.Stderr, "replicasim: unknown -reconcile %q (want incremental or fullscan)\n", *reconcile)
		os.Exit(2)
	}

	cfg := shard.Config{
		Seed:      *seed,
		Shards:    *shards,
		Workers:   *workers,
		World:     spatial.NewRect(0, 0, *side, *side),
		CellSize:  16,
		TickDT:    0.5,
		GhostBand: 24,
		Reconcile: *reconcile,
		// The hub consumes the feeds, so they must record even under
		// -reconcile fullscan.
		ChangeFeed: true,
	}
	if *scenario == "border" {
		cfg.GhostFields = shard.BorderGhostFields()
	}
	rt, err := shard.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replicasim: %v\n", err)
		os.Exit(1)
	}
	defer rt.Close()
	if *scenario == "border" {
		err = shard.SeedBorderCrowd(rt, *units, *side, *seed, 6)
	} else {
		err = shard.SeedMingleCrowd(rt, *units, *side, *seed, 40)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "replicasim: %v\n", err)
		os.Exit(1)
	}

	hub := replica.NewHub(replica.HubConfig{
		Specs:      scenarioSpecs(*scenario),
		Cell:       *cell,
		ByteBudget: *budget,
		WireSizing: *wireSizing,
	})
	// Client placement and drift draw from their own stream so the
	// world evolution stays bit-identical to shardsim's at equal seeds.
	crng := rand.New(rand.NewSource(*seed * 7919))
	conns := make([]*replica.Conn, *clients)
	slowBudget := *budget / 8
	if slowBudget < 1 {
		slowBudget = 1
	}
	for i := range conns {
		focus := spatial.Vec2{X: crng.Float64() * *side, Y: crng.Float64() * *side}
		b := 0 // hub default
		if crng.Float64() < *slowFrac {
			b = slowBudget
		}
		conns[i] = hub.AddClient(i, focus, *aoi, b)
	}

	pump := shard.NewFeedPump(rt, hub)
	if !*jsonOut {
		fmt.Printf("replicasim: %d clients over %d entities (%s), %d shards × %d workers, %d cores\n\n",
			*clients, *units, *scenario, *shards, *workers, runtime.GOMAXPROCS(0))
	}

	// Publish the seeded population (the initial Sync's sealed window
	// holds every spawn), then connect the windows: the first flush
	// snapshots each client's covered cells.
	pump.Pump()
	hub.FlushTick()

	var bytesTotal, msgsTotal, snapsTotal, dropsTotal int64
	driftN := int(float64(*clients) * *drift)
	var lastRep replica.TickReport
	start := time.Now()
	for i := 0; i < *ticks; i++ {
		if _, err := rt.Step(); err != nil {
			fmt.Fprintf(os.Stderr, "replicasim: tick %d: %v\n", rt.Tick(), err)
			os.Exit(1)
		}
		pump.Pump()
		rep := hub.FlushTick()
		bytesTotal += rep.Bytes
		msgsTotal += rep.Msgs
		snapsTotal += rep.Snapshots
		dropsTotal += rep.Drops
		lastRep = rep
		for d := 0; d < driftN; d++ {
			c := conns[crng.Intn(len(conns))]
			hub.MoveClient(c, spatial.Vec2{
				X: clampf(c.Focus.X+(crng.Float64()*2-1)**aoi, 0, *side),
				Y: clampf(c.Focus.Y+(crng.Float64()*2-1)**aoi, 0, *side),
			})
		}
		if *report > 0 && !*jsonOut && (i+1)%*report == 0 {
			fmt.Printf("tick %4d  msgs=%d bytes=%d snaps=%d drops=%d tiers=[%d %d %d]\n",
				rep.Tick, rep.Msgs, rep.Bytes, rep.Snapshots, rep.Drops,
				rep.Tiers[0], rep.Tiers[1], rep.Tiers[2])
		}
	}
	elapsed := time.Since(start)
	hash := rt.Hash()

	p50 := hub.Staleness.Quantile(0.50)
	p99 := hub.Staleness.Quantile(0.99)
	if *jsonOut {
		rep := metrics.BenchReport{Suite: "replicasim"}
		rep.Records = append(rep.Records, metrics.BenchRecord{
			Name:           fmt.Sprintf("replicasim/%s/clients-%d", *scenario, *clients),
			NsPerOp:        float64(elapsed.Nanoseconds()) / float64(*ticks),
			EntitiesPerSec: float64(*clients) * float64(*ticks) / elapsed.Seconds(),
			Extra: map[string]any{
				"scenario":          *scenario,
				"reconcile":         *reconcile,
				"wire_sizing":       *wireSizing,
				"clients":           *clients,
				"units":             *units,
				"shards":            *shards,
				"workers":           *workers,
				"fanout_bytes":      bytesTotal,
				"bytes_per_tick":    float64(bytesTotal) / float64(*ticks),
				"msgs_per_tick":     float64(msgsTotal) / float64(*ticks),
				"snapshots":         snapsTotal,
				"drops":             dropsTotal,
				"staleness_p50":     p50,
				"staleness_p99":     p99,
				"tiers_exact":       lastRep.Tiers[0],
				"tiers_coarse":      lastRep.Tiers[1],
				"tiers_cosmetic":    lastRep.Tiers[2],
				"tier_degrades":     hub.DegradeTotal.Load(),
				"tier_upgrades":     hub.UpgradeTotal.Load(),
				"feed_cells":        rt.FeedCellTotal.Load(),
				"ghost_ships":       rt.GhostShipTotal.Load(),
				"ghost_field_skips": rt.GhostFieldSkipTotal.Load(),
				"hash":              fmt.Sprintf("%016x", hash),
			},
		})
		if err := metrics.WriteBenchJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "replicasim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("\ndone: %d ticks in %v (%.1f ticks/sec, %.2fM client-flushes/sec)\n",
		*ticks, elapsed.Round(time.Millisecond),
		float64(*ticks)/elapsed.Seconds(),
		float64(*clients)*float64(*ticks)/elapsed.Seconds()/1e6)
	fmt.Printf("fan-out: %.1f KB/tick, %.0f msgs/tick, %d snapshots, %d drops\n",
		float64(bytesTotal)/float64(*ticks)/1024, float64(msgsTotal)/float64(*ticks),
		snapsTotal, dropsTotal)
	fmt.Printf("staleness (ticks): p50=%.0f p99=%.0f over %d samples\n",
		p50, p99, hub.Staleness.Count())
	fmt.Printf("tiers: exact=%d coarse=%d cosmetic=%d (degrades=%d upgrades=%d)\n",
		lastRep.Tiers[0], lastRep.Tiers[1], lastRep.Tiers[2],
		hub.DegradeTotal.Load(), hub.UpgradeTotal.Load())
	fmt.Printf("world hash %016x (identical for any -shards/-workers/-reconcile)\n", hash)
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
