// Command worldsim loads a content pack and runs the world server for a
// number of ticks, printing per-tick statistics — the smallest end-to-end
// demonstration of the data-driven pipeline: XML in, simulation out.
//
//	worldsim -pack game.xml -ticks 100
//	worldsim                              # runs the embedded demo pack
//	worldsim -workers 4 -json > BENCH.json # parallel tick, bench record
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gamedb/internal/content"
	"gamedb/internal/metrics"
	"gamedb/internal/world"
)

const demoPack = `
<contentpack name="demo-skirmish">
  <schema table="units">
    <column name="hp" kind="int" default="100"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="faction" kind="string" default="neutral"/>
    <column name="engaged" kind="int"/>
  </schema>
  <archetype name="wolf" table="units" script="hunt">
    <set column="hp" value="35"/>
    <set column="faction" value="wild"/>
  </archetype>
  <archetype name="sheep" table="units" script="graze">
    <set column="hp" value="20"/>
    <set column="faction" value="farm"/>
  </archetype>
  <script name="hunt" restricted="true">
fn on_tick(self) {
  let prey = nearby(self, 25.0);
  if len(prey) > 0 { emit("contact", self, len(prey)); }
}
  </script>
  <script name="graze">
fn on_tick(self) {
  let threats = nearby(self, 12.0);
  for id in threats {
    if get(id, "faction") == "wild" {
      move_toward(self, pos_x(self) + (pos_x(self) - pos_x(id)),
                  pos_y(self) + (pos_y(self) - pos_y(id)), 2.0);
      return;
    }
  }
}
  </script>
  <trigger name="mark-engaged" event="contact">
    <do>set(self, "engaged", get(self, "engaged") + 1);</do>
  </trigger>
  <spawn archetype="wolf" count="6" x="50" y="50" spread="30"/>
  <spawn archetype="sheep" count="30" x="120" y="120" spread="60"/>
</contentpack>`

func main() {
	packPath := flag.String("pack", "", "content pack XML file (empty = embedded demo)")
	ticks := flag.Int("ticks", 50, "ticks to simulate")
	seed := flag.Int64("seed", 1, "world seed")
	every := flag.Int("report", 10, "print stats every N ticks")
	workers := flag.Int("workers", 1, "query-phase and trigger-round worker goroutines (state is identical for any value)")
	directTriggers := flag.Bool("direct-triggers", false, "use the legacy single-threaded direct-write trigger drain")
	rowApply := flag.Bool("row-apply", false, "use the legacy row-at-a-time effect apply (state is identical either way)")
	conflict := flag.String("conflict", world.ConflictLastWrite, "conflict policy for conflicting assignments: lastwrite | occ")
	jsonOut := flag.Bool("json", false, "emit a machine-readable benchmark record on stdout")
	flag.Parse()
	if *conflict != world.ConflictLastWrite && *conflict != world.ConflictOCC {
		fmt.Fprintf(os.Stderr, "worldsim: unknown -conflict %q (want lastwrite or occ)\n", *conflict)
		os.Exit(2)
	}

	var src string
	if *packPath == "" {
		src = demoPack
	} else {
		raw, err := os.ReadFile(*packPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
			os.Exit(1)
		}
		src = string(raw)
	}
	c, errs := content.LoadAndCompile(strings.NewReader(src))
	if len(errs) > 0 {
		fmt.Fprintln(os.Stderr, "worldsim: content pack rejected:")
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "  %v\n", err)
		}
		os.Exit(1)
	}
	for _, warn := range c.Warnings {
		fmt.Fprintf(os.Stderr, "worldsim: warning: %v\n", warn)
	}
	w := world.New(world.Config{
		Seed: *seed, Workers: *workers, DirectTriggers: *directTriggers,
		RowApply: *rowApply, ConflictPolicy: *conflict,
	})
	if err := w.LoadPack(c); err != nil {
		fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("loaded pack %q: %d entities across %v (%d workers)\n",
			c.Name, w.Entities(), w.TableNames(), *workers)
	}

	var effects, conflicts, retries, aborts, queryNS, applyNS, triggerNS int64
	var trigFired, trigRounds, trigEffects, trigConflicts int64
	scriptErrors, scriptSkips := 0, 0
	entityTicks := 0
	start := time.Now()
	for i := 0; i < *ticks; i++ {
		st, err := w.Step()
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: tick %d: %v\n", st.Tick, err)
			os.Exit(1)
		}
		effects += int64(st.Effects)
		conflicts += int64(st.EffectConflicts)
		retries += int64(st.EffectRetries)
		aborts += int64(st.EffectAborts)
		queryNS += st.QueryNS
		applyNS += st.ApplyNS
		triggerNS += st.TriggerNS
		trigFired += int64(st.TriggerFired)
		trigRounds += int64(st.TriggerRounds)
		trigEffects += int64(st.TriggerEffects)
		trigConflicts += int64(st.TriggerConflicts)
		scriptErrors += st.ScriptErrors
		scriptSkips += st.ScriptSkips
		entityTicks += st.Entities
		if !*jsonOut && *every > 0 && int(st.Tick)%*every == 0 {
			fmt.Printf("tick %4d  entities=%d scripts=%d triggers=%d rounds=%d effects=%d fuel=%d errors=%d\n",
				st.Tick, st.Entities, st.ScriptCalls, st.TriggerFired, st.TriggerRounds,
				st.Effects+st.TriggerEffects, st.FuelUsed, st.ScriptErrors)
		}
	}
	elapsed := time.Since(start)

	if *jsonOut {
		drain := "effect"
		if *directTriggers {
			drain = "direct"
		}
		rep := metrics.BenchReport{Suite: "worldsim"}
		rep.Records = append(rep.Records, metrics.BenchRecord{
			Name:           fmt.Sprintf("worldsim/workers-%d", *workers),
			NsPerOp:        float64(elapsed.Nanoseconds()) / float64(*ticks),
			EntitiesPerSec: float64(entityTicks) / elapsed.Seconds(),
			Extra: map[string]any{
				"workers":           *workers,
				"ticks":             *ticks,
				"trigger_drain":     drain,
				"conflict_policy":   *conflict,
				"effects_per_tick":  float64(effects) / float64(*ticks),
				"effect_conflicts":  conflicts,
				"effect_retries":    retries,
				"effect_aborts":     aborts,
				"script_errors":     scriptErrors,
				"script_skips":      scriptSkips,
				"trigger_fired":     trigFired,
				"trigger_rounds":    trigRounds,
				"trigger_effects":   trigEffects,
				"trigger_conflicts": trigConflicts,
				"query_ns_per_op":   float64(queryNS) / float64(*ticks),
				"apply_ns_per_op":   float64(applyNS) / float64(*ticks),
				"trigger_ns_per_op": float64(triggerNS) / float64(*ticks),
			},
		})
		if err := metrics.WriteBenchJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
			os.Exit(1)
		}
		// A bench record over a world whose behaviors are failing is
		// measuring nothing; make that loud on stderr.
		if scriptErrors > 0 {
			fmt.Fprintf(os.Stderr, "worldsim: warning: %d script errors during the run (last: %v)\n",
				scriptErrors, w.LastScriptError)
		}
		return
	}
	if w.LastScriptError != nil {
		fmt.Printf("last script error: %v\n", w.LastScriptError)
	}
	fmt.Printf("done after %d ticks, %d entities alive (%d effects, %d conflicts, apply %.1f%% of tick)\n",
		*ticks, w.Entities(), effects, conflicts,
		100*float64(applyNS)/float64(queryNS+applyNS))
}
