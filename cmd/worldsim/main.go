// Command worldsim loads a content pack and runs the world server for a
// number of ticks, printing per-tick statistics — the smallest end-to-end
// demonstration of the data-driven pipeline: XML in, simulation out.
//
//	worldsim -pack game.xml -ticks 100
//	worldsim                  # runs the embedded demo pack
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gamedb/internal/content"
	"gamedb/internal/world"
)

const demoPack = `
<contentpack name="demo-skirmish">
  <schema table="units">
    <column name="hp" kind="int" default="100"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="faction" kind="string" default="neutral"/>
    <column name="engaged" kind="int"/>
  </schema>
  <archetype name="wolf" table="units" script="hunt">
    <set column="hp" value="35"/>
    <set column="faction" value="wild"/>
  </archetype>
  <archetype name="sheep" table="units" script="graze">
    <set column="hp" value="20"/>
    <set column="faction" value="farm"/>
  </archetype>
  <script name="hunt" restricted="true">
fn on_tick(self) {
  let prey = nearby(self, 25.0);
  if len(prey) > 0 { emit("contact", self, len(prey)); }
}
  </script>
  <script name="graze">
fn on_tick(self) {
  let threats = nearby(self, 12.0);
  for id in threats {
    if get(id, "faction") == "wild" {
      move_toward(self, pos_x(self) + (pos_x(self) - pos_x(id)),
                  pos_y(self) + (pos_y(self) - pos_y(id)), 2.0);
      return;
    }
  }
}
  </script>
  <trigger name="mark-engaged" event="contact">
    <do>set(self, "engaged", get(self, "engaged") + 1);</do>
  </trigger>
  <spawn archetype="wolf" count="6" x="50" y="50" spread="30"/>
  <spawn archetype="sheep" count="30" x="120" y="120" spread="60"/>
</contentpack>`

func main() {
	packPath := flag.String("pack", "", "content pack XML file (empty = embedded demo)")
	ticks := flag.Int("ticks", 50, "ticks to simulate")
	seed := flag.Int64("seed", 1, "world seed")
	every := flag.Int("report", 10, "print stats every N ticks")
	flag.Parse()

	var src string
	if *packPath == "" {
		src = demoPack
	} else {
		raw, err := os.ReadFile(*packPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
			os.Exit(1)
		}
		src = string(raw)
	}
	c, errs := content.LoadAndCompile(strings.NewReader(src))
	if len(errs) > 0 {
		fmt.Fprintln(os.Stderr, "worldsim: content pack rejected:")
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "  %v\n", err)
		}
		os.Exit(1)
	}
	w := world.New(world.Config{Seed: *seed})
	if err := w.LoadPack(c); err != nil {
		fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded pack %q: %d entities across %v\n", c.Name, w.Entities(), w.TableNames())

	for i := 0; i < *ticks; i++ {
		st, err := w.Step()
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: tick %d: %v\n", st.Tick, err)
			os.Exit(1)
		}
		if *every > 0 && int(st.Tick)%*every == 0 {
			fmt.Printf("tick %4d  entities=%d scripts=%d triggers=%d fuel=%d errors=%d\n",
				st.Tick, st.Entities, st.ScriptCalls, st.TriggerFired, st.FuelUsed, st.ScriptErrors)
		}
	}
	if w.LastScriptError != nil {
		fmt.Printf("last script error: %v\n", w.LastScriptError)
	}
	fmt.Printf("done after %d ticks, %d entities alive\n", *ticks, w.Entities())
}
