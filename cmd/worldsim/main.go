// Command worldsim loads a content pack and runs the world server for a
// number of ticks, printing per-tick statistics — the smallest end-to-end
// demonstration of the data-driven pipeline: XML in, simulation out.
//
//	worldsim -pack game.xml -ticks 100
//	worldsim                              # runs the embedded demo pack
//	worldsim -workers 4 -json > BENCH.json # parallel tick, bench record
//	worldsim -trace out.json -profile      # tick spans + per-rule profile
//	worldsim -listen 127.0.0.1:8080        # live /metrics + pprof endpoint
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"gamedb/internal/content"
	"gamedb/internal/metrics"
	"gamedb/internal/obs"
	"gamedb/internal/shard"
	"gamedb/internal/world"
)

// coverage is the compiled-plan share of behavior invocations (0 when
// nothing ran).
func coverage(compiled, calls int) float64 {
	if calls == 0 {
		return 0
	}
	return float64(compiled) / float64(calls)
}

const demoPack = `
<contentpack name="demo-skirmish">
  <schema table="units">
    <column name="hp" kind="int" default="100"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="faction" kind="string" default="neutral"/>
    <column name="engaged" kind="int"/>
  </schema>
  <archetype name="wolf" table="units" script="hunt">
    <set column="hp" value="35"/>
    <set column="faction" value="wild"/>
  </archetype>
  <archetype name="sheep" table="units" script="graze">
    <set column="hp" value="20"/>
    <set column="faction" value="farm"/>
  </archetype>
  <script name="hunt" restricted="true">
fn on_tick(self) {
  let prey = nearby(self, 25.0);
  if len(prey) > 0 { emit("contact", self, len(prey)); }
}
  </script>
  <script name="graze">
fn on_tick(self) {
  let threats = nearby(self, 12.0);
  for id in threats {
    if get(id, "faction") == "wild" {
      move_toward(self, pos_x(self) + (pos_x(self) - pos_x(id)),
                  pos_y(self) + (pos_y(self) - pos_y(id)), 2.0);
      return;
    }
  }
}
  </script>
  <trigger name="mark-engaged" event="contact">
    <do>set(self, "engaged", get(self, "engaged") + 1);</do>
  </trigger>
  <spawn archetype="wolf" count="6" x="50" y="50" spread="30"/>
  <spawn archetype="sheep" count="30" x="120" y="120" spread="60"/>
</contentpack>`

func main() {
	packPath := flag.String("pack", "", "content pack XML file (empty = embedded demo)")
	scenario := flag.String("scenario", "pack", "workload: pack (run -pack or the embedded demo) | border (the E22 cross-shard-write crowd on one world — the baseline every sharded border run must hash-match)")
	ticks := flag.Int("ticks", 50, "ticks to simulate")
	seed := flag.Int64("seed", 1, "world seed")
	every := flag.Int("report", 10, "print stats every N ticks")
	workers := flag.Int("workers", 1, "query-phase and trigger-round worker goroutines (state is identical for any value)")
	directTriggers := flag.Bool("direct-triggers", false, "use the legacy single-threaded direct-write trigger drain")
	rowApply := flag.Bool("row-apply", false, "use the legacy row-at-a-time effect apply (state is identical either way)")
	conflict := flag.String("conflict", world.ConflictLastWrite, "conflict policy for conflicting assignments: lastwrite | occ")
	compile := flag.String("compile", world.CompileOff, "behavior execution: off (interpret) | on (compile to set-at-a-time query plans, state identical either way)")
	feed := flag.Bool("feed", false, "record a per-tick change feed (dirty (table, column, id) cells; state identical either way)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable benchmark record on stdout")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the run's tick spans to this file")
	profileOn := flag.Bool("profile", false, "collect and print the per-behavior / per-rule profile")
	listen := flag.String("listen", "", "serve /metrics, /trace, /profile and /debug/pprof on this address (operators only; bind a trusted interface such as 127.0.0.1:8080)")
	linger := flag.Duration("linger", 0, "keep the -listen endpoint serving this long after the run finishes (lets a scraper collect final values)")
	flag.Parse()
	if *conflict != world.ConflictLastWrite && *conflict != world.ConflictOCC {
		fmt.Fprintf(os.Stderr, "worldsim: unknown -conflict %q (want lastwrite or occ)\n", *conflict)
		os.Exit(2)
	}
	if *compile != world.CompileOff && *compile != world.CompileOn {
		fmt.Fprintf(os.Stderr, "worldsim: unknown -compile %q (want on or off)\n", *compile)
		os.Exit(2)
	}

	if *scenario != "pack" && *scenario != "border" {
		fmt.Fprintf(os.Stderr, "worldsim: unknown -scenario %q (want pack or border)\n", *scenario)
		os.Exit(2)
	}

	var c *content.Compiled
	if *scenario == "pack" {
		var src string
		if *packPath == "" {
			src = demoPack
		} else {
			raw, err := os.ReadFile(*packPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
				os.Exit(1)
			}
			src = string(raw)
		}
		var errs []error
		c, errs = content.LoadAndCompile(strings.NewReader(src))
		if len(errs) > 0 {
			fmt.Fprintln(os.Stderr, "worldsim: content pack rejected:")
			for _, err := range errs {
				fmt.Fprintf(os.Stderr, "  %v\n", err)
			}
			os.Exit(1)
		}
		for _, warn := range c.Warnings {
			fmt.Fprintf(os.Stderr, "worldsim: warning: %v\n", warn)
		}
	}
	// Observability: a tracer when anything wants spans, a profiler when
	// anything wants attribution. Both stay nil (and cost one branch per
	// hook) unless asked for.
	var tracer *obs.Tracer
	if *tracePath != "" || *listen != "" {
		tracer = obs.NewTracer(obs.DefaultSpanCap)
	}
	var prof *obs.Profiler
	if *profileOn || *listen != "" {
		prof = obs.NewProfiler()
	}

	w := world.New(world.Config{
		Seed: *seed, Workers: *workers, DirectTriggers: *directTriggers,
		RowApply: *rowApply, ConflictPolicy: *conflict, CompileBehaviors: *compile,
		ChangeFeed: *feed, Trace: tracer.Context(0), Profile: prof,
	})
	if *scenario == "border" {
		// The same pack and spawn stream SeedBorderCrowd drives through
		// the sharded runtime — one world, so every write is local.
		if err := shard.SeedBorderWorld(w, 240, 400, *seed, 6); err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("seeded border-write crowd: %d entities across %v (%d workers)\n",
				w.Entities(), w.TableNames(), *workers)
		}
	} else {
		if err := w.LoadPack(c); err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("loaded pack %q: %d entities across %v (%d workers)\n",
				c.Name, w.Entities(), w.TableNames(), *workers)
		}
	}

	// Live endpoint: registry instruments fed from the tick loop, served
	// alongside the tracer, profiler and pprof.
	var liveEntities atomic.Int64
	var reg *obs.Registry
	if *listen != "" {
		reg = obs.Default()
		reg.Gauge("worldsim_entities", func() float64 { return float64(liveEntities.Load()) })
		srv, ln, err := obs.Serve(*listen, obs.NewServeMux(reg, tracer, prof))
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "worldsim: serving metrics on http://%s/metrics\n", ln.Addr())
	}

	var effects, conflicts, retries, aborts, queryNS, applyNS, triggerNS int64
	var trigFired, trigRounds, trigEffects, trigConflicts int64
	var fwd, remoteMerged, remoteInval int64
	var feedCells int64
	scriptErrors, scriptSkips := 0, 0
	scriptCalls, compiledCalls := 0, 0
	entityTicks := 0
	lastPrinted := false
	printTick := func(st world.TickStats) {
		fmt.Printf("tick %4d  entities=%d scripts=%d triggers=%d rounds=%d effects=%d fuel=%d errors=%d\n",
			st.Tick, st.Entities, st.ScriptCalls, st.TriggerFired, st.TriggerRounds,
			st.Effects+st.TriggerEffects, st.FuelUsed, st.ScriptErrors)
	}
	start := time.Now()
	for i := 0; i < *ticks; i++ {
		tickStart := time.Now()
		st, err := w.Step()
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: tick %d: %v\n", st.Tick, err)
			os.Exit(1)
		}
		effects += int64(st.Effects)
		conflicts += int64(st.EffectConflicts)
		retries += int64(st.EffectRetries)
		aborts += int64(st.EffectAborts)
		queryNS += st.QueryNS
		applyNS += st.ApplyNS
		triggerNS += st.TriggerNS
		trigFired += int64(st.TriggerFired)
		trigRounds += int64(st.TriggerRounds)
		trigEffects += int64(st.TriggerEffects)
		trigConflicts += int64(st.TriggerConflicts)
		fwd += int64(st.EffectsForwarded)
		remoteMerged += int64(st.EffectsRemoteMerged)
		remoteInval += int64(st.RemoteInvalidations)
		if *feed {
			// Rotate after each Step the way the shard barrier does; the
			// sealed window holds exactly this tick's dirty cells.
			feedCells += int64(w.RotateFeed().CellCount())
		}
		scriptErrors += st.ScriptErrors
		scriptSkips += st.ScriptSkips
		scriptCalls += st.ScriptCalls
		compiledCalls += st.CompiledCalls
		entityTicks += st.Entities
		if reg != nil {
			liveEntities.Store(int64(st.Entities))
			reg.Counter("worldsim_ticks_total").Inc()
			reg.Counter("worldsim_effects_total").Add(int64(st.Effects + st.TriggerEffects))
			reg.Counter("worldsim_conflicts_total").Add(int64(st.EffectConflicts + st.TriggerConflicts))
			reg.Counter("worldsim_script_errors_total").Add(int64(st.ScriptErrors))
			reg.Counter("worldsim_effects_forwarded_total").Add(int64(st.EffectsForwarded))
			reg.Counter("worldsim_effects_remote_merged_total").Add(int64(st.EffectsRemoteMerged))
			reg.Counter("worldsim_remote_invalidations_total").Add(int64(st.RemoteInvalidations))
			reg.Histogram("worldsim_tick_ns").Record(float64(time.Since(tickStart).Nanoseconds()))
		}
		lastPrinted = false
		if !*jsonOut && *every > 0 && int(st.Tick)%*every == 0 {
			printTick(st)
			lastPrinted = true
		}
		// The run's final tick always prints, whether or not -report
		// divides -ticks: the exit state is the line people read.
		if !*jsonOut && i == *ticks-1 && !lastPrinted {
			printTick(st)
		}
	}
	elapsed := time.Since(start)

	// Exit-time observability artifacts, shared by the text and -json
	// paths: the Chrome trace file (plus a human-readable slowest-tick
	// timeline on stderr) and the -linger window for scrapers.
	finish := func() {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err == nil {
				err = tracer.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "worldsim: trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "worldsim: wrote trace to %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *tracePath)
			tracer.WriteSlowestTimeline(os.Stderr)
		}
		if *listen != "" && *linger > 0 {
			fmt.Fprintf(os.Stderr, "worldsim: lingering %v for scrapers\n", *linger)
			time.Sleep(*linger)
		}
	}

	if *jsonOut {
		drain := "effect"
		if *directTriggers {
			drain = "direct"
		}
		rep := metrics.BenchReport{Suite: "worldsim"}
		rep.Records = append(rep.Records, metrics.BenchRecord{
			Name:           fmt.Sprintf("worldsim/workers-%d", *workers),
			NsPerOp:        float64(elapsed.Nanoseconds()) / float64(*ticks),
			EntitiesPerSec: float64(entityTicks) / elapsed.Seconds(),
			Extra: map[string]any{
				"workers":               *workers,
				"ticks":                 *ticks,
				"trigger_drain":         drain,
				"conflict_policy":       *conflict,
				"compile_behaviors":     *compile,
				"compiled_calls":        compiledCalls,
				"compiled_coverage":     coverage(compiledCalls, scriptCalls),
				"effects_per_tick":      float64(effects) / float64(*ticks),
				"change_feed":           *feed,
				"feed_cells_per_tick":   float64(feedCells) / float64(*ticks),
				"effect_conflicts":      conflicts,
				"effect_retries":        retries,
				"effect_aborts":         aborts,
				"effects_forwarded":     fwd,
				"effects_remote_merged": remoteMerged,
				"remote_invalidations":  remoteInval,
				"script_errors":         scriptErrors,
				"script_skips":          scriptSkips,
				"trigger_fired":         trigFired,
				"trigger_rounds":        trigRounds,
				"trigger_effects":       trigEffects,
				"trigger_conflicts":     trigConflicts,
				"query_ns_per_op":       float64(queryNS) / float64(*ticks),
				"apply_ns_per_op":       float64(applyNS) / float64(*ticks),
				"trigger_ns_per_op":     float64(triggerNS) / float64(*ticks),
			},
		})
		if *profileOn {
			rep.Records[0].Extra["profile"] = prof.Rows()
		}
		if err := metrics.WriteBenchJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "worldsim: %v\n", err)
			os.Exit(1)
		}
		// A bench record over a world whose behaviors are failing is
		// measuring nothing; make that loud on stderr.
		if scriptErrors > 0 {
			fmt.Fprintf(os.Stderr, "worldsim: warning: %d script errors during the run (last: %v)\n",
				scriptErrors, w.LastScriptError)
		}
		finish()
		return
	}
	if w.LastScriptError != nil {
		fmt.Printf("last script error: %v\n", w.LastScriptError)
	}
	fmt.Printf("done after %d ticks, %d entities alive (%d effects, %d conflicts, apply %.1f%% of tick)\n",
		*ticks, w.Entities(), effects, conflicts,
		100*float64(applyNS)/float64(queryNS+applyNS))
	if *profileOn {
		fmt.Println()
		prof.Table().Fprint(os.Stdout)
	}
	finish()
}
