// Command gslrun parses and executes a GSL script file: the standalone
// harness designers use to test behavior scripts outside the engine.
//
//	gslrun script.gsl              # run top-level statements, then main()
//	gslrun -restricted script.gsl  # enforce the no-loop/no-recursion regime
//	gslrun -check script.gsl       # parse + restricted check only
//	gslrun -plan script.gsl        # print the compiled on_tick query plan
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gamedb/internal/gslplan"
	"gamedb/internal/script"
)

func main() {
	restricted := flag.Bool("restricted", false, "enforce restricted mode (no loops, no recursion)")
	checkOnly := flag.Bool("check", false, "only parse and run restricted-mode checks")
	plan := flag.Bool("plan", false, "print the compiled on_tick query plan (or the fallback reason)")
	fuel := flag.Int64("fuel", script.DefaultFuel, "fuel budget per run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gslrun [-restricted] [-check] [-plan] [-fuel N] <script.gsl>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gslrun: %v\n", err)
		os.Exit(1)
	}
	prog, err := script.Parse(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gslrun: %v\n", err)
		os.Exit(1)
	}
	if *plan {
		name := strings.TrimSuffix(filepath.Base(flag.Arg(0)), filepath.Ext(flag.Arg(0)))
		p, err := gslplan.Compile(name, prog)
		if err != nil {
			var nc *gslplan.NotCompilable
			if errors.As(err, &nc) {
				fmt.Printf("interpreter fallback: %s (line %d)\n", nc.Construct, nc.Line)
				return
			}
			fmt.Fprintf(os.Stderr, "gslrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(p.Explain())
		return
	}
	violations := script.CheckRestricted(prog)
	if *checkOnly {
		if len(violations) == 0 {
			fmt.Println("ok: script is admissible in restricted mode")
			return
		}
		for _, v := range violations {
			fmt.Printf("restricted: %s\n", v)
		}
		os.Exit(1)
	}
	if *restricted && len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "gslrun: script rejected in restricted mode:")
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	in := script.NewInterp(prog, script.Options{
		Fuel: *fuel,
		Log:  func(s string) { fmt.Println(s) },
	})
	if err := in.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "gslrun: %v\n", err)
		os.Exit(1)
	}
	if _, ok := prog.Fns["main"]; ok {
		v, err := in.Call("main")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gslrun: %v\n", err)
			os.Exit(1)
		}
		if !v.IsNull() {
			fmt.Printf("main() = %s\n", v)
		}
	}
	fmt.Printf("fuel used: %d\n", in.FuelUsed())
}
