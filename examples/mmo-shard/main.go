// MMO shard: the paper's scale story end to end, in two acts.
//
// Act 1 — within one shard: a hotspot crowd moves around a large map;
// every tick the shard predicts reachability from velocity and
// acceleration bounds (EVE's differential-equation trick in closed
// form), partitions the map into causality bubbles, and executes that
// tick's interaction transactions bubble-parallel — racing the classic
// lock-based alternatives on the way.
//
// Act 2 — across shards: the same map is split into region shards under
// gamedb.OpenSharded; 1, 2, 4 and 8 shards race the identical
// seed-fixed crowd, with cross-shard handoff and ghost replication
// keeping the final world hash identical for every shard count.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"gamedb"
	"gamedb/internal/bubble"
	"gamedb/internal/shard"
	"gamedb/internal/spatial"
	"gamedb/internal/txn"
	"gamedb/internal/workload"
)

func main() {
	singleShardBubbles()
	shardedRuntimeRace()
}

func singleShardBubbles() {
	const (
		players = 2000
		side    = 4000.0
	)
	rng := rand.New(rand.NewSource(2009))
	world := spatial.NewRect(0, 0, side, side)
	move := workload.NewHotspot(rng, players, world, 25, 5)
	cfg := bubble.Config{Horizon: 0.5, InteractRange: 20}
	workers := runtime.GOMAXPROCS(0)

	fmt.Printf("shard: %d players on a %.0f×%.0f map, %d workers\n\n",
		players, side, side, workers)

	// Let the crowd gather at the hotspots.
	for i := 0; i < 300; i++ {
		move.Step(0.1)
	}

	fmt.Println("tick  bubbles  largest  singleton%  partition-time")
	for tick := 1; tick <= 5; tick++ {
		move.Step(0.1)
		start := time.Now()
		part := bubble.Compute(move.BubbleEntities(), cfg)
		elapsed := time.Since(start)
		singles := 0
		for _, b := range part.Bubbles {
			if len(b) == 1 {
				singles++
			}
		}
		fmt.Printf("%4d  %7d  %7d  %9.1f%%  %s\n",
			tick, part.NumBubbles(), part.MaxSize(),
			100*float64(singles)/float64(part.NumBubbles()),
			elapsed.Round(time.Microsecond))
	}

	// One tick's worth of interaction transactions, executed five ways.
	part := bubble.Compute(move.BubbleEntities(), cfg)
	txns := workload.LocalTxns(move, 4, 300)
	groups := workload.GroupTxnsByBubble(part, txns)

	fmt.Printf("\nexecuting %d interaction txns:\n", len(txns))
	run := func(name string, ex txn.Executor) {
		store := txn.NewStore(players)
		start := time.Now()
		stats := ex.Run(store, txns, workers)
		fmt.Printf("  %-12s %8s  committed=%d aborted=%d\n",
			name, time.Since(start).Round(time.Microsecond), stats.Committed, stats.Aborted)
	}
	run("serial", txn.Serial{})
	run("global-lock", txn.GlobalLock{})
	run("2pl", txn.TwoPL{})
	run("occ", txn.OCC{})
	run("bubbles", txn.Partitioned{Groups: groups})

	fmt.Println("\nbubbles execute lock-free: distinct bubbles cannot conflict within the horizon.")
}

// shardedRuntimeRace splits the map into region shards and races shard
// counts over the identical seed-fixed crowd.
func shardedRuntimeRace() {
	const (
		players = 2000
		side    = 2000.0
		ticks   = 150
		seed    = 2009
	)
	fmt.Printf("\nsharded world runtime: %d players, %d ticks per shard count\n\n", players, ticks)
	fmt.Println("shards  ticks/sec  handoffs/tick  ghosts  world-hash")

	var firstHash uint64
	hashesAgree := true
	for _, n := range []int{1, 2, 4, 8} {
		eng, err := gamedb.OpenSharded(gamedb.ShardedOptions{
			Seed:           seed,
			Shards:         n,
			World:          gamedb.NewRect(0, 0, side, side),
			TickDT:         0.5,
			GhostBand:      24,
			RebalanceEvery: 25,
		})
		if err != nil {
			panic(err)
		}
		rt := eng.Runtime
		// Seed-fixed spawn stream: identical crowd for every shard count.
		if err := shard.SeedDriftingCrowd(rt, players, side, seed, 40); err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < ticks; i++ {
			if _, err := eng.Tick(); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		hash := eng.Hash()
		if n == 1 {
			firstHash = hash
		}
		mark := "✓"
		if hash != firstHash {
			mark = "✗"
			hashesAgree = false
		}
		fmt.Printf("%6d  %9.1f  %13.2f  %6d  %016x %s\n",
			n, float64(ticks)/elapsed.Seconds(),
			float64(rt.HandoffTotal.Load())/float64(ticks), rt.Ghosts(), hash, mark)
		eng.Close()
	}
	if hashesAgree {
		fmt.Println("\nhandoff + ghost replication keep the world hash identical for every shard count.")
	} else {
		fmt.Println("\nFAIL: world hash diverged across shard counts.")
		os.Exit(1)
	}
}
