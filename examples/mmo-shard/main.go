// MMO shard: the causality-bubble pipeline end to end. A hotspot crowd
// moves around a large map; every tick the shard predicts reachability
// from velocity and acceleration bounds (EVE's differential-equation
// trick in closed form), partitions the map into bubbles, and executes
// that tick's interaction transactions bubble-parallel — racing the
// classic lock-based alternatives on the way.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"gamedb/internal/bubble"
	"gamedb/internal/spatial"
	"gamedb/internal/txn"
	"gamedb/internal/workload"
)

func main() {
	const (
		players = 2000
		side    = 4000.0
	)
	rng := rand.New(rand.NewSource(2009))
	world := spatial.NewRect(0, 0, side, side)
	move := workload.NewHotspot(rng, players, world, 25, 5)
	cfg := bubble.Config{Horizon: 0.5, InteractRange: 20}
	workers := runtime.GOMAXPROCS(0)

	fmt.Printf("shard: %d players on a %.0f×%.0f map, %d workers\n\n",
		players, side, side, workers)

	// Let the crowd gather at the hotspots.
	for i := 0; i < 300; i++ {
		move.Step(0.1)
	}

	fmt.Println("tick  bubbles  largest  singleton%  partition-time")
	for tick := 1; tick <= 5; tick++ {
		move.Step(0.1)
		start := time.Now()
		part := bubble.Compute(move.BubbleEntities(), cfg)
		elapsed := time.Since(start)
		singles := 0
		for _, b := range part.Bubbles {
			if len(b) == 1 {
				singles++
			}
		}
		fmt.Printf("%4d  %7d  %7d  %9.1f%%  %s\n",
			tick, part.NumBubbles(), part.MaxSize(),
			100*float64(singles)/float64(part.NumBubbles()),
			elapsed.Round(time.Microsecond))
	}

	// One tick's worth of interaction transactions, executed five ways.
	part := bubble.Compute(move.BubbleEntities(), cfg)
	txns := workload.LocalTxns(move, 4, 300)
	groups := workload.GroupTxnsByBubble(part, txns)

	fmt.Printf("\nexecuting %d interaction txns:\n", len(txns))
	run := func(name string, ex txn.Executor) {
		store := txn.NewStore(players)
		start := time.Now()
		stats := ex.Run(store, txns, workers)
		fmt.Printf("  %-12s %8s  committed=%d aborted=%d\n",
			name, time.Since(start).Round(time.Microsecond), stats.Committed, stats.Aborted)
	}
	run("serial", txn.Serial{})
	run("global-lock", txn.GlobalLock{})
	run("2pl", txn.TwoPL{})
	run("occ", txn.OCC{})
	run("bubbles", txn.Partitioned{Groups: groups})

	fmt.Println("\nbubbles execute lock-free: distinct bubbles cannot conflict within the horizon.")
}
