// UI mod: the user-generated-content pipeline. Players author XML packs
// (WoW-style UI frames plus behavior scripts); the engine validates them
// before anything runs — and in restricted mode, scripts with loops or
// recursion are rejected at load time with designer-readable errors
// rather than stalling the server at runtime.
package main

import (
	"fmt"
	"strings"

	"gamedb/internal/content"
	"gamedb/internal/world"
)

const goodMod = `
<contentpack name="cleanhud" restricted="true">
  <uiframe name="healthbar" x="20" y="20" w="260" h="28" anchor="topleft"/>
  <uiframe name="minimap" x="-210" y="20" w="190" h="190" anchor="topright"/>
  <uiframe name="castbar" x="0" y="-120" w="320" h="22" anchor="bottom"/>
  <schema table="hud_state">
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="alert" kind="int"/>
  </schema>
  <archetype name="hud" table="hud_state" script="pulse"/>
  <script name="pulse">
fn on_tick(self) {
  let crowd = nearby(self, 30.0)
  if len(crowd) > 5 { set(self, "alert", 1) }
  else { set(self, "alert", 0) }
}
  </script>
  <spawn archetype="hud" count="1" x="0" y="0"/>
</contentpack>`

const maliciousMod = `
<contentpack name="freezehud" restricted="true">
  <uiframe name="spinner" x="0" y="0" w="64" h="64" anchor="center"/>
  <script name="grief">
fn on_tick(self) {
  while true { }
}
  </script>
  <script name="bomb">
fn deeper(n) { return deeper(n + 1); }
fn on_tick(self) { deeper(0); }
  </script>
</contentpack>`

func main() {
	fmt.Println("== loading player mod 'cleanhud' ==")
	good, errs := content.LoadAndCompile(strings.NewReader(goodMod))
	if len(errs) > 0 {
		panic(fmt.Sprint(errs))
	}
	w := world.New(world.Config{Seed: 3})
	if err := w.LoadPack(good); err != nil {
		panic(err)
	}
	fmt.Printf("accepted: %d UI frames, %d scripts (all restricted-mode clean)\n",
		len(w.Frames()), len(good.Scripts))
	for _, f := range w.Frames() {
		fmt.Printf("  frame %-10s %4.0f×%-4.0f anchored %s\n", f.Name, f.W, f.H, f.Anchor)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Step(); err != nil {
			panic(err)
		}
	}
	fmt.Printf("ran 5 ticks with the mod installed, %d entities\n\n", w.Entities())

	fmt.Println("== loading player mod 'freezehud' ==")
	_, errs = content.LoadAndCompile(strings.NewReader(maliciousMod))
	if len(errs) == 0 {
		panic("the malicious mod should have been rejected")
	}
	fmt.Println("rejected at load time:")
	for _, err := range errs {
		fmt.Printf("  %v\n", err)
	}
	fmt.Println("\nno runaway script ever reached the simulation loop.")
}
