// Quickstart: build an engine from the public gamedb API, load a
// data-driven content pack, run the simulation, and checkpoint/recover —
// the five-minute tour of the library.
package main

import (
	"fmt"
	"log"
	"strings"

	"gamedb"
)

const pack = `
<contentpack name="meadow">
  <schema table="units">
    <column name="hp" kind="int" default="100"/>
    <column name="x" kind="float"/>
    <column name="y" kind="float"/>
    <column name="mood" kind="string" default="calm"/>
  </schema>
  <archetype name="rabbit" table="units" script="wander">
    <set column="hp" value="10"/>
  </archetype>
  <script name="wander" restricted="true">
fn on_tick(self) {
  move_toward(self, pos_x(self) + rand_float() * 4.0 - 2.0,
              pos_y(self) + rand_float() * 4.0 - 2.0, 1.0)
  let crowd = nearby(self, 5.0)
  if len(crowd) > 3 { set(self, "mood", "crowded") }
}
  </script>
  <spawn archetype="rabbit" count="40" x="50" y="50" spread="20"/>
</contentpack>`

func main() {
	// An engine with event-keyed ("intelligent") checkpointing.
	eng, err := gamedb.New(gamedb.Options{
		Seed:       7,
		Checkpoint: gamedb.EventKeyed{MaxTicks: 500},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.LoadPackXML(strings.NewReader(pack)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rabbits\n", eng.World.Entities())

	for i := 0; i < 100; i++ {
		if _, err := eng.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	// Query game state directly through the table API.
	units, _ := eng.World.Table("units")
	crowded := 0
	units.Scan(func(id gamedb.ID, row []gamedb.Value) bool {
		if row[units.Schema().MustCol("mood")] == gamedb.Str("crowded") {
			crowded++
		}
		return true
	})
	fmt.Printf("after 100 ticks: %d rabbits feel crowded\n", crowded)

	// An important event (a rare carrot!) checkpoints immediately...
	if err := eng.NoteImportant(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoints taken: %d\n", eng.Checkpoints)

	// ...so a crash right after loses nothing.
	lost, err := eng.CrashAndRecover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash recovered, ticks of progress lost: %d\n", lost)
	fmt.Printf("world resumed at tick %d with %d entities\n",
		eng.World.Tick(), eng.World.Entities())
}
