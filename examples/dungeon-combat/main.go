// Dungeon combat: a raid boss fight driving three of the paper's
// systems at once — threat-table aggro (stable targeting under noisy
// client views), navmesh pathfinding into the boss room, and intelligent
// checkpointing that snapshots on the boss kill so the guild never
// repeats the fight after a crash.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"gamedb/internal/combat"
	"gamedb/internal/persist"
	"gamedb/internal/spatial"
	"gamedb/internal/workload"
)

// raidState adapts the raid's progress counter to persist.StateSource.
type raidState struct {
	bossKills int64
	lootItems int64
	actions   int64
}

func (s *raidState) Snapshot() ([]byte, error) {
	return []byte(fmt.Sprintf("%d|%d|%d", s.bossKills, s.lootItems, s.actions)), nil
}

func (s *raidState) Restore(b []byte) error {
	_, err := fmt.Sscanf(string(b), "%d|%d|%d", &s.bossKills, &s.lootItems, &s.actions)
	return err
}

func (s *raidState) Apply(a persist.Action) error {
	s.actions++
	switch a.Kind {
	case workload.RaidBossKill.String():
		s.bossKills++
	case workload.RaidLootDrop.String():
		s.lootItems++
	}
	return nil
}

func (s *raidState) Reset() { *s = raidState{} }

func main() {
	rng := rand.New(rand.NewSource(11))

	// --- The approach: path through the dungeon to the boss room.
	dungeon := spatial.GenerateDungeon(rng, 120, 90, 10)
	entrance := dungeon.Rooms[0].Center()
	bossRoom := dungeon.Rooms[len(dungeon.Rooms)-1].Center()
	path, ok := dungeon.Mesh.FindPath(entrance, bossRoom)
	if !ok {
		panic("no route to the boss room")
	}
	fmt.Printf("approach: %d navmesh polygons, %d waypoints, cost %.1f (%d expansions)\n",
		len(path.Polys), len(path.Waypoints), path.Cost, path.Expanded)
	if id, d, ok := dungeon.Mesh.NearestTagged(bossRoom, spatial.TagHiding); ok {
		fmt.Printf("nearest hiding spot from the boss room: polygon %d, %.1f away\n", id, d)
	}

	// --- The fight, persisted with intelligent checkpointing.
	state := &raidState{}
	backing := &persist.Backing{}
	mgr := persist.NewManager(state, backing, persist.EventKeyed{MaxTicks: 2000})
	raid := workload.NewRaid(rng, 18, 400_000)

	start := time.Now()
	for !raid.Finished() {
		for _, ev := range raid.Step() {
			if _, err := mgr.Apply(ev.Tick, ev.Kind.String(), ev.Important, ev.Amount); err != nil {
				panic(err)
			}
		}
	}
	fmt.Printf("\nboss down after %d ticks (%s simulated)\n",
		raid.Tick(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("threat-table target switches during the fight: %d (aggro held)\n",
		raid.Boss.Switches)
	tank, _ := raid.Boss.Target(combat.MeleeSwitchFactor)
	fmt.Printf("final boss target: raider %d\n", tank)

	// --- The crash, one tick after victory.
	rep := mgr.Crash()
	fmt.Printf("\nserver crashed! rollback report: lost %d actions, %d important\n",
		rep.LostActions, rep.LostImportant)
	if _, err := mgr.Recover(); err != nil {
		panic(err)
	}
	fmt.Printf("recovered: %d boss kill(s) and %d loot item(s) survived\n",
		state.bossKills, state.lootItems)
	fmt.Printf("checkpoints written: %d (one per important event + interval fallback)\n",
		backing.SnapshotWrites)
	if rep.LostImportant == 0 {
		fmt.Println("\nno repeated boss fight: intelligent checkpointing kept the kill.")
	}
}
